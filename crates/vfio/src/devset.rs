//! VFIO devices, device sets, and the open/reset paths.
//!
//! Devset formation follows §3.2.2: a device that supports slot-level
//! reset forms a singleton devset; bus-level-reset devices share one
//! devset per PCI bus. Opening a device performs devset maintenance — a
//! full PCI bus scan (membership check) plus bookkeeping — *inside the
//! devset lock*, which is precisely the work the coarse design serializes
//! across all 200 concurrently started containers.

use crate::group::VfioGroup;
use crate::locking::{ChildLock, LockPolicy, ParentChildLock};
use crate::{Result, VfioError};
use fastiov_faults::{sites, FaultPlane};
use fastiov_pci::{Bdf, DriverBinding, PciBus, PciDevice, ResetCapability};
use fastiov_simtime::{LockClass, TrackedMutex, TrackedRwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Key identifying a devset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DevsetKey {
    /// Singleton devset of a slot-resettable device.
    Slot(Bdf),
    /// Shared devset of all bus-reset devices on one bus.
    Bus(u8),
}

/// Local (per-device) state guarded by the child lock.
#[derive(Debug, Default)]
pub struct DeviceState {
    /// Times this device is currently held open.
    pub open_count: u32,
}

/// Global (per-devset) state guarded by parent-mode acquisition.
#[derive(Debug, Default)]
pub struct DevsetState {
    /// Bus-level resets performed.
    pub resets: u64,
}

/// A VFIO-managed device.
pub struct VfioDevice {
    pci: Arc<PciDevice>,
    devset: Weak<DevSet>,
    state: ChildLock<DeviceState>,
}

impl VfioDevice {
    /// The underlying PCI device.
    pub fn pci(&self) -> &Arc<PciDevice> {
        &self.pci
    }

    /// The device's address.
    pub fn bdf(&self) -> Bdf {
        self.pci.bdf()
    }

    /// The devset this device belongs to.
    pub fn devset(&self) -> Arc<DevSet> {
        self.devset
            .upgrade()
            .expect("invariant: the manager keeps devsets alive while devices exist")
    }

    /// Current open count (diagnostic; takes the child lock).
    pub fn open_count(&self) -> u32 {
        self.devset().lock.lock_child(&self.state).open_count
    }
}

/// A device set: the reset-correctness domain of §3.2.2.
pub struct DevSet {
    key: DevsetKey,
    lock: ParentChildLock<DevsetState>,
    devices: TrackedRwLock<Vec<Arc<VfioDevice>>>,
    bus: Arc<PciBus>,
    /// Devset bookkeeping charged inside the lock on every open, on top of
    /// the PCI bus scan.
    open_overhead: Duration,
}

impl DevSet {
    /// Number of member devices.
    pub fn len(&self) -> usize {
        self.devices.read().len()
    }

    /// True if the devset has no members.
    pub fn is_empty(&self) -> bool {
        self.devices.read().is_empty()
    }

    /// The lock policy in force.
    pub fn policy(&self) -> LockPolicy {
        self.lock.policy()
    }

    fn bus_no(&self) -> u8 {
        match self.key {
            DevsetKey::Slot(bdf) => bdf.bus,
            DevsetKey::Bus(b) => b,
        }
    }

    /// Opens `dev`: scans the PCI bus for devset membership, charges the
    /// bookkeeping overhead, and bumps the open count — all while holding
    /// the devset lock in child mode for `dev`.
    fn open(&self, dev: &Arc<VfioDevice>) -> Result<()> {
        let mut st = self.lock.lock_child(&dev.state);
        // Membership validation: every VFIO-bound bus-reset device on our
        // bus must be in this devset (§3.2.2); devices owned by other
        // drivers (e.g. the PF) are outside VFIO's reset domain. The scan
        // itself is the charged cost.
        let on_bus = self.bus.scan_bus(self.bus_no());
        if matches!(self.key, DevsetKey::Bus(_)) {
            let members = self.devices.read();
            for d in on_bus {
                if d.driver() == DriverBinding::Vfio
                    && d.reset_capability() == ResetCapability::BusReset
                    && !members.iter().any(|m| m.bdf() == d.bdf())
                {
                    return Err(VfioError::Unregistered(d.bdf()));
                }
            }
        }
        self.bus.clock().sleep(self.open_overhead);
        st.open_count += 1;
        Ok(())
    }

    /// Closes one open handle of `dev`.
    fn close(&self, dev: &Arc<VfioDevice>) -> Result<()> {
        let mut st = self.lock.lock_child(&dev.state);
        if st.open_count == 0 {
            return Err(VfioError::NotOpen(dev.bdf()));
        }
        st.open_count -= 1;
        Ok(())
    }

    /// Resets `dev`. Slot-resettable devices reset alone (a child
    /// operation); bus-reset devices require the parent lock, a membership
    /// scan, and a zero total open count across *other* members.
    fn reset(&self, dev: &Arc<VfioDevice>) -> Result<()> {
        match dev.pci.reset_capability() {
            ResetCapability::SlotReset => {
                let _g = self.lock.lock_child(&dev.state);
                self.bus.reset_device(dev.bdf())?;
                Ok(())
            }
            ResetCapability::BusReset => {
                let mut parent = self.lock.lock_parent();
                let _scan = self.bus.scan_bus(self.bus_no());
                let others_open: u32 = {
                    let members = self.devices.read();
                    members
                        .iter()
                        .filter(|m| m.bdf() != dev.bdf())
                        // The parent-mode witness proves all child
                        // operations are excluded, so direct child-state
                        // access cannot race (see ChildLock::lock_direct).
                        .map(|m| m.state.lock_direct(parent.witness()).open_count)
                        .sum()
                };
                if others_open > 0 {
                    return Err(VfioError::DevsetBusy {
                        bdf: dev.bdf(),
                        others_open,
                    });
                }
                self.bus.reset_bus(self.bus_no());
                parent.resets += 1;
                Ok(())
            }
        }
    }

    /// Bus-level resets performed on this devset.
    pub fn reset_count(&self) -> u64 {
        self.lock.lock_parent().resets
    }
}

/// An open handle to a VFIO device. Closing is RAII: dropping the fd
/// decrements the device's open count.
pub struct VfioDeviceFd {
    dev: Arc<VfioDevice>,
}

impl VfioDeviceFd {
    /// The device this fd refers to.
    pub fn device(&self) -> &Arc<VfioDevice> {
        &self.dev
    }

    /// The device address.
    pub fn bdf(&self) -> Bdf {
        self.dev.bdf()
    }
}

impl Drop for VfioDeviceFd {
    fn drop(&mut self) {
        // A failed close here means the handle was double-closed, which
        // the RAII design makes impossible; ignore defensively.
        let _ = self.dev.devset().close(&self.dev);
    }
}

/// Counters for the whole VFIO driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VfioStats {
    /// Successful device opens.
    pub opens: u64,
    /// Successful resets.
    pub resets: u64,
    /// Resets refused because the devset was busy.
    pub busy_refusals: u64,
}

/// The VFIO driver core: registration and devset assignment.
pub struct DevsetManager {
    policy: LockPolicy,
    bus: Arc<PciBus>,
    open_overhead: Duration,
    devsets: TrackedMutex<HashMap<DevsetKey, Arc<DevSet>>>,
    devices: TrackedMutex<HashMap<Bdf, Arc<VfioDevice>>>,
    groups: TrackedMutex<HashMap<Bdf, Arc<VfioGroup>>>,
    next_group: AtomicU64,
    opens: AtomicU64,
    resets: AtomicU64,
    busy: AtomicU64,
    /// Fault plane consulted on the ioctl paths. Groups capture the plane
    /// installed at their registration time.
    faults: TrackedMutex<Arc<FaultPlane>>,
    /// Span tracer for the open path; installed at host construction.
    tracer: TrackedRwLock<Option<fastiov_simtime::Tracer>>,
}

impl DevsetManager {
    /// Creates the driver core.
    ///
    /// `open_overhead` is the devset bookkeeping charged inside the lock
    /// on every open (on top of the PCI bus scan the open performs).
    pub fn new(bus: Arc<PciBus>, policy: LockPolicy, open_overhead: Duration) -> Arc<Self> {
        Arc::new(DevsetManager {
            policy,
            bus,
            open_overhead,
            devsets: TrackedMutex::new(LockClass::DevsetRegistry, HashMap::new()),
            devices: TrackedMutex::new(LockClass::DevsetRegistry, HashMap::new()),
            groups: TrackedMutex::new(LockClass::DevsetRegistry, HashMap::new()),
            next_group: AtomicU64::new(0),
            opens: AtomicU64::new(0),
            resets: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            faults: TrackedMutex::new(LockClass::FaultPlane, FaultPlane::disabled()),
            tracer: TrackedRwLock::new(LockClass::TracerSlot, None),
        })
    }

    /// Installs the fault plane for the ioctl paths. Must be called
    /// before devices are registered: groups capture the current plane.
    pub fn set_fault_plane(&self, plane: Arc<FaultPlane>) {
        *self.faults.lock() = plane;
    }

    /// Installs the span tracer for the open path.
    pub fn set_tracer(&self, tracer: fastiov_simtime::Tracer) {
        *self.tracer.write() = Some(tracer);
    }

    /// The lock policy devices are created with.
    pub fn policy(&self) -> LockPolicy {
        self.policy
    }

    /// Registers a VFIO-bound PCI device, assigning it to its devset.
    pub fn register(&self, pci: Arc<PciDevice>) -> Result<Arc<VfioDevice>> {
        if pci.driver() != DriverBinding::Vfio {
            return Err(VfioError::NotVfioBound(pci.bdf()));
        }
        let key = match pci.reset_capability() {
            ResetCapability::SlotReset => DevsetKey::Slot(pci.bdf()),
            ResetCapability::BusReset => DevsetKey::Bus(pci.bdf().bus),
        };
        let devset = {
            let mut sets = self.devsets.lock();
            Arc::clone(sets.entry(key).or_insert_with(|| {
                Arc::new(DevSet {
                    key,
                    lock: ParentChildLock::new(self.policy, DevsetState::default()),
                    devices: TrackedRwLock::new(LockClass::DevsetMembers, Vec::new()),
                    bus: Arc::clone(&self.bus),
                    open_overhead: self.open_overhead,
                })
            }))
        };
        let dev = Arc::new(VfioDevice {
            pci,
            devset: Arc::downgrade(&devset),
            state: ChildLock::new(DeviceState::default()),
        });
        devset.devices.write().push(Arc::clone(&dev));
        self.devices.lock().insert(dev.bdf(), Arc::clone(&dev));
        // Every function gets its own IOMMU group (ACS topology).
        let gid = self.next_group.fetch_add(1, Ordering::Relaxed) as u32;
        let group = {
            let plane = self.faults.lock();
            if plane.is_enabled() {
                VfioGroup::with_faults(gid, dev.bdf(), Arc::clone(&plane), self.bus.clock().clone())
            } else {
                VfioGroup::new(gid, dev.bdf())
            }
        };
        self.groups.lock().insert(dev.bdf(), group);
        Ok(dev)
    }

    /// Unregisters a device (must be closed).
    pub fn unregister(&self, bdf: Bdf) -> Result<()> {
        let dev = self
            .devices
            .lock()
            .remove(&bdf)
            .ok_or(VfioError::Unregistered(bdf))?;
        if dev.open_count() > 0 {
            // Put it back; it is busy.
            self.devices.lock().insert(bdf, Arc::clone(&dev));
            return Err(VfioError::DevsetBusy {
                bdf,
                others_open: dev.open_count(),
            });
        }
        let devset = dev.devset();
        devset.devices.write().retain(|d| d.bdf() != bdf);
        self.groups.lock().remove(&bdf);
        Ok(())
    }

    /// The IOMMU group of a registered device.
    pub fn group(&self, bdf: Bdf) -> Result<Arc<VfioGroup>> {
        self.groups
            .lock()
            .get(&bdf)
            .cloned()
            .ok_or(VfioError::Unregistered(bdf))
    }

    /// Looks up a registered device.
    pub fn device(&self, bdf: Bdf) -> Result<Arc<VfioDevice>> {
        self.devices
            .lock()
            .get(&bdf)
            .cloned()
            .ok_or(VfioError::Unregistered(bdf))
    }

    /// Opens a device, returning an RAII fd. This is the hot path of
    /// bottleneck 1: under [`LockPolicy::Coarse`], concurrent opens of
    /// different VFs serialize on the devset mutex.
    pub fn open(&self, bdf: Bdf) -> Result<VfioDeviceFd> {
        let _span = self.tracer.read().as_ref().map(|t| t.span("vfio.open"));
        let dev = self.device(bdf)?;
        // VFIO only hands out device descriptors through an attached
        // group (VFIO_GROUP_GET_DEVICE_FD).
        let group = self.group(bdf)?;
        let Some(owner) = group.owner() else {
            return Err(VfioError::GroupNotAttached(bdf));
        };
        {
            let plane = self.faults.lock();
            if plane.is_enabled() {
                plane.check(sites::VFIO_DEV_OPEN, owner, self.bus.clock())?;
            }
        }
        dev.devset().open(&dev)?;
        self.opens.fetch_add(1, Ordering::Relaxed);
        Ok(VfioDeviceFd { dev })
    }

    /// Resets a device through its devset.
    pub fn reset(&self, bdf: Bdf) -> Result<()> {
        let dev = self.device(bdf)?;
        match dev.devset().reset(&dev) {
            Ok(()) => {
                self.resets.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e @ VfioError::DevsetBusy { .. }) => {
                self.busy.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Devset of a registered device (diagnostics).
    pub fn devset_of(&self, bdf: Bdf) -> Result<Arc<DevSet>> {
        Ok(self.device(bdf)?.devset())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> VfioStats {
        VfioStats {
            opens: self.opens.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            busy_refusals: self.busy.load(Ordering::Relaxed),
        }
    }

    /// Aggregate wait/hold time across every devset's parent–child lock.
    pub fn lock_stats(&self) -> fastiov_simtime::LockSnapshot {
        self.devsets
            .lock()
            .values()
            .map(|s| s.lock.lock_stats())
            .fold(fastiov_simtime::LockSnapshot::default(), |a, b| a.merged(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastiov_pci::DeviceClass;
    use fastiov_simtime::{Clock, WallStopwatch};

    fn setup(policy: LockPolicy, n_vfs: u8) -> (Arc<PciBus>, Arc<DevsetManager>) {
        let clock = Clock::with_scale(1e-4);
        let bus = PciBus::new(clock, Duration::from_micros(50), Duration::from_millis(1));
        let mgr = DevsetManager::new(Arc::clone(&bus), policy, Duration::from_micros(100));
        for i in 0..n_vfs {
            let dev = PciDevice::new(
                Bdf::new(3, i, 0),
                DeviceClass::NetworkVf,
                ResetCapability::BusReset,
                None,
            );
            dev.bind_driver(DriverBinding::Vfio);
            bus.add_device(Arc::clone(&dev)).unwrap();
            mgr.register(dev).unwrap();
            // These tests exercise the devset paths; attach each group to
            // a test container so opens are permitted.
            mgr.group(Bdf::new(3, i, 0)).unwrap().attach(1).unwrap();
        }
        (bus, mgr)
    }

    #[test]
    fn bus_reset_devices_share_a_devset() {
        let (_, mgr) = setup(LockPolicy::Coarse, 4);
        let s0 = mgr.devset_of(Bdf::new(3, 0, 0)).unwrap();
        let s1 = mgr.devset_of(Bdf::new(3, 1, 0)).unwrap();
        assert!(Arc::ptr_eq(&s0, &s1));
        assert_eq!(s0.len(), 4);
    }

    #[test]
    fn slot_reset_devices_get_singleton_devsets() {
        let clock = Clock::with_scale(1e-4);
        let bus = PciBus::new(clock, Duration::from_micros(10), Duration::from_millis(1));
        let mgr = DevsetManager::new(Arc::clone(&bus), LockPolicy::Coarse, Duration::ZERO);
        for i in 0..2 {
            let dev = PciDevice::new(
                Bdf::new(1, i, 0),
                DeviceClass::NetworkVf,
                ResetCapability::SlotReset,
                None,
            );
            dev.bind_driver(DriverBinding::Vfio);
            bus.add_device(Arc::clone(&dev)).unwrap();
            mgr.register(dev).unwrap();
        }
        let s0 = mgr.devset_of(Bdf::new(1, 0, 0)).unwrap();
        let s1 = mgr.devset_of(Bdf::new(1, 1, 0)).unwrap();
        assert!(!Arc::ptr_eq(&s0, &s1));
        assert_eq!(s0.len(), 1);
    }

    #[test]
    fn unbound_device_rejected() {
        let clock = Clock::with_scale(1e-4);
        let bus = PciBus::new(clock, Duration::from_micros(10), Duration::from_millis(1));
        let mgr = DevsetManager::new(bus, LockPolicy::Coarse, Duration::ZERO);
        let dev = PciDevice::new(
            Bdf::new(1, 0, 0),
            DeviceClass::NetworkVf,
            ResetCapability::BusReset,
            None,
        );
        assert!(matches!(mgr.register(dev), Err(VfioError::NotVfioBound(_))));
    }

    #[test]
    fn open_close_tracks_counts() {
        let (_, mgr) = setup(LockPolicy::Hierarchical, 2);
        let bdf = Bdf::new(3, 0, 0);
        let fd = mgr.open(bdf).unwrap();
        assert_eq!(mgr.device(bdf).unwrap().open_count(), 1);
        let fd2 = mgr.open(bdf).unwrap();
        assert_eq!(mgr.device(bdf).unwrap().open_count(), 2);
        drop(fd);
        drop(fd2);
        assert_eq!(mgr.device(bdf).unwrap().open_count(), 0);
        assert_eq!(mgr.stats().opens, 2);
    }

    #[test]
    fn reset_refused_while_peer_open() {
        let (_, mgr) = setup(LockPolicy::Hierarchical, 2);
        let _fd = mgr.open(Bdf::new(3, 1, 0)).unwrap();
        let e = mgr.reset(Bdf::new(3, 0, 0)).unwrap_err();
        assert!(matches!(e, VfioError::DevsetBusy { others_open: 1, .. }));
        assert_eq!(mgr.stats().busy_refusals, 1);
    }

    #[test]
    fn reset_succeeds_when_devset_idle() {
        let (_, mgr) = setup(LockPolicy::Hierarchical, 2);
        {
            let _fd = mgr.open(Bdf::new(3, 1, 0)).unwrap();
        }
        mgr.reset(Bdf::new(3, 0, 0)).unwrap();
        assert_eq!(mgr.stats().resets, 1);
        let devset = mgr.devset_of(Bdf::new(3, 0, 0)).unwrap();
        assert_eq!(devset.reset_count(), 1);
    }

    #[test]
    fn self_open_does_not_block_own_reset() {
        // Only *other* devices' opens block a bus reset.
        let (_, mgr) = setup(LockPolicy::Coarse, 2);
        let _fd = mgr.open(Bdf::new(3, 0, 0)).unwrap();
        mgr.reset(Bdf::new(3, 0, 0)).unwrap();
    }

    #[test]
    fn unregister_busy_device_refused() {
        let (_, mgr) = setup(LockPolicy::Coarse, 2);
        let bdf = Bdf::new(3, 0, 0);
        let fd = mgr.open(bdf).unwrap();
        assert!(mgr.unregister(bdf).is_err());
        drop(fd);
        mgr.unregister(bdf).unwrap();
        assert!(mgr.device(bdf).is_err());
    }

    /// The headline behaviour: concurrent opens serialize under the coarse
    /// policy and parallelize under the hierarchical one.
    #[test]
    fn concurrent_opens_faster_under_hierarchical_lock() {
        fn run(policy: LockPolicy) -> Duration {
            // Chunky per-open cost (2 ms real) so serialization dominates
            // thread-spawn noise.
            let clock = Clock::with_scale(1e-3);
            let bus = PciBus::new(clock, Duration::from_micros(100), Duration::from_millis(1));
            let mgr = DevsetManager::new(Arc::clone(&bus), policy, Duration::from_millis(2000));
            for i in 0..16 {
                let dev = PciDevice::new(
                    Bdf::new(3, i, 0),
                    DeviceClass::NetworkVf,
                    ResetCapability::BusReset,
                    None,
                );
                dev.bind_driver(DriverBinding::Vfio);
                bus.add_device(Arc::clone(&dev)).unwrap();
                mgr.register(dev).unwrap();
                mgr.group(Bdf::new(3, i, 0)).unwrap().attach(1).unwrap();
            }
            let t0 = WallStopwatch::start();
            let handles: Vec<_> = (0..16u8)
                .map(|i| {
                    let mgr = Arc::clone(&mgr);
                    std::thread::spawn(move || {
                        let fd = mgr.open(Bdf::new(3, i, 0)).unwrap();
                        std::mem::forget(fd); // keep open; leak is test-local
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(bus);
            t0.elapsed()
        }
        let coarse = run(LockPolicy::Coarse);
        let hier = run(LockPolicy::Hierarchical);
        assert!(
            coarse > hier * 2,
            "coarse {coarse:?} vs hierarchical {hier:?}"
        );
    }
}
