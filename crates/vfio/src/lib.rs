//! VFIO driver model: device sets, lock designs, and the DMA mapping
//! pipeline.
//!
//! This crate reimplements the two VFIO behaviours the paper measures:
//!
//! 1. **Devset management** (§3.2.2): VFIO devices that only support
//!    bus-level reset share a *device set* per PCI bus. Opening any device
//!    scans the bus and updates open counts. The vanilla driver guards all
//!    of this with **one coarse mutex**, serializing concurrent opens —
//!    the single largest startup bottleneck (48.1 % of average startup at
//!    concurrency 200). FastIOV's fix (§4.2.1) is the hierarchical
//!    [`locking::ParentChildLock`]: a devset-wide rwlock plus a per-device
//!    mutex, making inter-device operations parallel while parent-state
//!    operations (reset) stay exclusive. Both designs are implemented and
//!    selectable per experiment via [`locking::LockPolicy`].
//! 2. **DMA memory mapping** (§3.2.3, Fig. 6): the
//!    retrieve → zero → pin → map pipeline in
//!    [`container::VfioContainer::dma_map`], with the zeroing step
//!    switchable between eager (vanilla) and deferred (FastIOV's
//!    decoupled zeroing, which hands the unzeroed frames to a registrar —
//!    `fastiovd` in the full stack).

#![warn(missing_docs)]

pub mod container;
pub mod devset;
pub mod group;
pub mod locking;

pub use container::{DmaMapping, DmaZeroMode, VfioContainer};
pub use devset::{DevSet, DevsetManager, VfioDevice, VfioDeviceFd, VfioStats};
pub use group::VfioGroup;
pub use locking::{
    ChildGuard, ChildLock, DirectChildGuard, LockPolicy, ParentChildLock, ParentGuard,
    ParentWitness,
};

use fastiov_faults::FaultError;
use fastiov_hostmem::MemError;
use fastiov_iommu::IommuError;
use fastiov_pci::{Bdf, PciError};
use std::fmt;

/// Errors from the VFIO model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfioError {
    /// Device is not bound to the VFIO driver.
    NotVfioBound(Bdf),
    /// Device was not registered with the devset manager.
    Unregistered(Bdf),
    /// A bus-level reset was requested while other devices in the devset
    /// are open.
    DevsetBusy {
        /// Device whose reset was requested.
        bdf: Bdf,
        /// Total open count of other devices in the devset.
        others_open: u32,
    },
    /// Close called on a device with zero open count.
    NotOpen(Bdf),
    /// Device opened through a group that is not attached to a container.
    GroupNotAttached(Bdf),
    /// Group attach refused: another container owns it.
    GroupBusy {
        /// The group's member device.
        bdf: Bdf,
        /// PID of the owning container's hypervisor.
        owner: u64,
    },
    /// Underlying memory error.
    Mem(MemError),
    /// Underlying IOMMU error.
    Iommu(IommuError),
    /// Underlying PCI error.
    Pci(PciError),
    /// Fault injected by the fault plane.
    Injected(FaultError),
}

impl VfioError {
    /// The injected fault behind this error, if any.
    pub fn injected(&self) -> Option<&FaultError> {
        match self {
            VfioError::Injected(f) => Some(f),
            _ => None,
        }
    }
}

impl fmt::Display for VfioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfioError::NotVfioBound(bdf) => write!(f, "device {bdf} not bound to vfio"),
            VfioError::Unregistered(bdf) => write!(f, "device {bdf} not registered"),
            VfioError::DevsetBusy { bdf, others_open } => write!(
                f,
                "cannot bus-reset {bdf}: {others_open} other open(s) in devset"
            ),
            VfioError::NotOpen(bdf) => write!(f, "device {bdf} is not open"),
            VfioError::GroupNotAttached(bdf) => {
                write!(f, "group of {bdf} not attached to a container")
            }
            VfioError::GroupBusy { bdf, owner } => {
                write!(f, "group of {bdf} already attached by pid {owner}")
            }
            VfioError::Mem(e) => write!(f, "memory: {e}"),
            VfioError::Iommu(e) => write!(f, "iommu: {e}"),
            VfioError::Pci(e) => write!(f, "pci: {e}"),
            VfioError::Injected(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VfioError {}

impl From<MemError> for VfioError {
    fn from(e: MemError) -> Self {
        VfioError::Mem(e)
    }
}

impl From<IommuError> for VfioError {
    fn from(e: IommuError) -> Self {
        VfioError::Iommu(e)
    }
}

impl From<PciError> for VfioError {
    fn from(e: PciError) -> Self {
        VfioError::Pci(e)
    }
}

impl From<FaultError> for VfioError {
    fn from(e: FaultError) -> Self {
        VfioError::Injected(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, VfioError>;
