//! The hierarchical parent–child lock framework (§4.2.1).
//!
//! A devset is a parent node whose global state relates to the local
//! states of its child devices. The paper distinguishes four operation
//! classes (Fig. 8a): inter-child (independent, parallelizable),
//! intra-child, intra-parent, and parent–child (all mutually exclusive
//! with one another). The framework realizes those semantics with two
//! off-the-shelf kernel locks (Fig. 8b):
//!
//! - the parent holds a **rwlock**;
//! - every child *i* holds a **mutex** `m_i`;
//! - a child operation takes the rwlock in *read* mode plus `m_i`;
//! - a parent operation takes the rwlock in *write* mode.
//!
//! Two child operations on different children then run in parallel (two
//! reads are compatible; distinct mutexes don't contend), while a parent
//! operation excludes everything.
//!
//! [`LockPolicy::Coarse`] degrades the same API to the vanilla design — a
//! single mutex for everything — so experiments can flip between designs
//! without touching call sites. The framework is deliberately generic
//! (the paper argues it "can be promoted to other scenarios"): see
//! `examples/lock_framework.rs` for a non-VFIO use.

use fastiov_simtime::{ContentionCounter, LockSnapshot};
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Which lock design guards a parent–child structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPolicy {
    /// Vanilla VFIO: one global mutex serializes every operation.
    Coarse,
    /// FastIOV: devset rwlock + per-device mutex; inter-child operations
    /// run in parallel.
    Hierarchical,
}

/// The per-child mutex protecting a child's local state `T`.
///
/// Constructed once per child and passed to
/// [`ParentChildLock::lock_child`]; the returned guard dereferences to the
/// child state.
#[derive(Debug)]
pub struct ChildLock<T> {
    mutex: Mutex<T>,
}

impl<T> ChildLock<T> {
    /// Wraps `state` in a child lock.
    pub fn new(state: T) -> Self {
        ChildLock {
            mutex: Mutex::new(state),
        }
    }

    /// Direct access to the child state *bypassing the framework*.
    ///
    /// Only sound while the caller holds the corresponding
    /// [`ParentChildLock`] in parent mode, which excludes all child
    /// operations; the devset reset path uses this to sum member open
    /// counts.
    pub fn lock_direct(&self) -> MutexGuard<'_, T> {
        self.mutex.lock()
    }
}

/// The parent-side lock pair implementing the framework.
///
/// `P` is the parent's global state, protected by parent-mode acquisition.
///
/// # Examples
///
/// ```
/// use fastiov_vfio::{ChildLock, LockPolicy, ParentChildLock};
///
/// // A devset with two devices.
/// let lock = ParentChildLock::new(LockPolicy::Hierarchical, 0u64);
/// let dev_a = ChildLock::new(0u32);
/// let dev_b = ChildLock::new(0u32);
///
/// // Inter-child operations may run in parallel...
/// *lock.lock_child(&dev_a) += 1;
/// *lock.lock_child(&dev_b) += 1;
/// // ...while parent operations exclude everything.
/// *lock.lock_parent() += 1;
/// assert_eq!(*lock.lock_parent(), 1);
/// ```
#[derive(Debug)]
pub struct ParentChildLock<P> {
    policy: LockPolicy,
    /// Used only under [`LockPolicy::Coarse`].
    coarse: Mutex<()>,
    /// Used only under [`LockPolicy::Hierarchical`].
    rw: RwLock<()>,
    /// The parent's global state. Access is legal only through guards, so
    /// it sits in its own mutex; under either policy that mutex is
    /// uncontended by construction (parent access is already exclusive).
    parent_state: Mutex<P>,
    /// Wait/hold accounting across all operations on this lock pair.
    stats: ContentionCounter,
}

/// Guard for a child operation; dereferences to the child state.
pub struct ChildGuard<'a, T> {
    _outer: OuterGuard<'a>,
    child: MutexGuard<'a, T>,
    stats: &'a ContentionCounter,
    wait_ns: u64,
    acquired: Instant,
}

/// Guard for a parent operation; dereferences to the parent state.
pub struct ParentGuard<'a, P> {
    _outer: OuterParentGuard<'a>,
    parent: MutexGuard<'a, P>,
    stats: &'a ContentionCounter,
    wait_ns: u64,
    acquired: Instant,
}

impl<T> Drop for ChildGuard<'_, T> {
    fn drop(&mut self) {
        self.stats
            .record(self.wait_ns, self.acquired.elapsed().as_nanos() as u64);
    }
}

impl<P> Drop for ParentGuard<'_, P> {
    fn drop(&mut self) {
        self.stats
            .record(self.wait_ns, self.acquired.elapsed().as_nanos() as u64);
    }
}

// The guards are held purely for their Drop impls (RAII release).
#[allow(dead_code)]
enum OuterGuard<'a> {
    Coarse(MutexGuard<'a, ()>),
    Read(RwLockReadGuard<'a, ()>),
}

#[allow(dead_code)]
enum OuterParentGuard<'a> {
    Coarse(MutexGuard<'a, ()>),
    Write(RwLockWriteGuard<'a, ()>),
}

impl<P> ParentChildLock<P> {
    /// Creates the lock pair with the given policy and parent state.
    pub fn new(policy: LockPolicy, parent_state: P) -> Self {
        ParentChildLock {
            policy,
            coarse: Mutex::new(()),
            rw: RwLock::new(()),
            parent_state: Mutex::new(parent_state),
            stats: ContentionCounter::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> LockPolicy {
        self.policy
    }

    /// Accumulated wait/hold time across all operations on this lock.
    pub fn lock_stats(&self) -> LockSnapshot {
        self.stats.snapshot()
    }

    /// Acquires for an **intra/inter-child** operation on the child whose
    /// local state lives in `child`.
    ///
    /// Under [`LockPolicy::Hierarchical`], two calls with *different*
    /// children proceed in parallel; same-child calls and any parent
    /// operation are excluded. Under [`LockPolicy::Coarse`], everything is
    /// serialized.
    pub fn lock_child<'a, T>(&'a self, child: &'a ChildLock<T>) -> ChildGuard<'a, T> {
        let t0 = Instant::now();
        let outer = match self.policy {
            LockPolicy::Coarse => OuterGuard::Coarse(self.coarse.lock()),
            LockPolicy::Hierarchical => OuterGuard::Read(self.rw.read()),
        };
        let child = child.mutex.lock();
        ChildGuard {
            _outer: outer,
            child,
            stats: &self.stats,
            wait_ns: t0.elapsed().as_nanos() as u64,
            acquired: Instant::now(),
        }
    }

    /// Acquires for an **intra-parent** or **parent–child** operation.
    /// Excludes every other operation under either policy.
    pub fn lock_parent(&self) -> ParentGuard<'_, P> {
        let t0 = Instant::now();
        let outer = match self.policy {
            LockPolicy::Coarse => OuterParentGuard::Coarse(self.coarse.lock()),
            LockPolicy::Hierarchical => OuterParentGuard::Write(self.rw.write()),
        };
        let parent = self.parent_state.lock();
        ParentGuard {
            _outer: outer,
            parent,
            stats: &self.stats,
            wait_ns: t0.elapsed().as_nanos() as u64,
            acquired: Instant::now(),
        }
    }
}

impl<T> std::ops::Deref for ChildGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.child
    }
}

impl<T> std::ops::DerefMut for ChildGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.child
    }
}

impl<P> std::ops::Deref for ParentGuard<'_, P> {
    type Target = P;

    fn deref(&self) -> &P {
        &self.parent
    }
}

impl<P> std::ops::DerefMut for ParentGuard<'_, P> {
    fn deref_mut(&mut self) -> &mut P {
        &mut self.parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Measures wall time of `n` concurrent child ops each holding the
    /// lock for `hold`.
    fn run_children(policy: LockPolicy, n: usize, hold: Duration) -> Duration {
        let lock = Arc::new(ParentChildLock::new(policy, 0u32));
        let children: Arc<Vec<ChildLock<u32>>> =
            Arc::new((0..n).map(|_| ChildLock::new(0)).collect());
        let t0 = Instant::now();
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let children = Arc::clone(&children);
                std::thread::spawn(move || {
                    let mut g = lock.lock_child(&children[i]);
                    std::thread::sleep(hold);
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        t0.elapsed()
    }

    #[test]
    fn coarse_serializes_hierarchical_parallelizes() {
        let hold = Duration::from_millis(5);
        let n = 8;
        let coarse = run_children(LockPolicy::Coarse, n, hold);
        let hier = run_children(LockPolicy::Hierarchical, n, hold);
        // Coarse must take ~n*hold, hierarchical ~hold. Use a conservative
        // 2x separation to stay robust under scheduler noise.
        assert!(
            coarse > hier * 2,
            "coarse {coarse:?} should be much slower than hierarchical {hier:?}"
        );
        assert!(coarse >= hold * (n as u32 - 1));
    }

    #[test]
    fn parent_op_excludes_child_ops() {
        for policy in [LockPolicy::Coarse, LockPolicy::Hierarchical] {
            let lock = Arc::new(ParentChildLock::new(policy, 0u32));
            let child = Arc::new(ChildLock::new(0u32));
            let in_parent = Arc::new(AtomicUsize::new(0));

            let l2 = Arc::clone(&lock);
            let flag = Arc::clone(&in_parent);
            let parent_thread = std::thread::spawn(move || {
                let mut g = l2.lock_parent();
                flag.store(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(20));
                *g += 1;
                flag.store(0, Ordering::SeqCst);
            });
            // Give the parent thread time to take the lock.
            std::thread::sleep(Duration::from_millis(5));
            let flag = Arc::clone(&in_parent);
            let l3 = Arc::clone(&lock);
            let c2 = Arc::clone(&child);
            let child_thread = std::thread::spawn(move || {
                let _g = l3.lock_child(&c2);
                // If exclusion works, the parent has finished by now.
                assert_eq!(flag.load(Ordering::SeqCst), 0, "policy {policy:?}");
            });
            parent_thread.join().unwrap();
            child_thread.join().unwrap();
        }
    }

    #[test]
    fn same_child_ops_are_exclusive_under_hierarchical() {
        let lock = Arc::new(ParentChildLock::new(LockPolicy::Hierarchical, ()));
        let child = Arc::new(ChildLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let child = Arc::clone(&child);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let mut g = lock.lock_child(&child);
                        // Non-atomic increment: only correct if exclusive.
                        let v = *g;
                        *g = v + 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock_child(&child), 8000);
    }

    #[test]
    fn parent_state_is_reachable_through_guard() {
        let lock = ParentChildLock::new(LockPolicy::Hierarchical, vec![1, 2, 3]);
        {
            let mut g = lock.lock_parent();
            g.push(4);
        }
        assert_eq!(lock.lock_parent().len(), 4);
    }
}
