//! The hierarchical parent–child lock framework (§4.2.1).
//!
//! A devset is a parent node whose global state relates to the local
//! states of its child devices. The paper distinguishes four operation
//! classes (Fig. 8a): inter-child (independent, parallelizable),
//! intra-child, intra-parent, and parent–child (all mutually exclusive
//! with one another). The framework realizes those semantics with two
//! off-the-shelf kernel locks (Fig. 8b):
//!
//! - the parent holds a **rwlock**;
//! - every child *i* holds a **mutex** `m_i`;
//! - a child operation takes the rwlock in *read* mode plus `m_i`;
//! - a parent operation takes the rwlock in *write* mode.
//!
//! Two child operations on different children then run in parallel (two
//! reads are compatible; distinct mutexes don't contend), while a parent
//! operation excludes everything.
//!
//! [`LockPolicy::Coarse`] degrades the same API to the vanilla design — a
//! single mutex for everything — so experiments can flip between designs
//! without touching call sites. The framework is deliberately generic
//! (the paper argues it "can be promoted to other scenarios"): see
//! `examples/lock_framework.rs` for a non-VFIO use.
//!
//! The framework is itself an instrumented wrapper: acquisitions report
//! to the lockdep witness under [`LockClass::DevsetParent`],
//! [`LockClass::DevsetChild`] and [`LockClass::DevsetState`], so the
//! rwlock/mutex internals below are the sanctioned raw-lock exception.

use fastiov_simtime::lockdep::{self, HeldToken, Mode};
use fastiov_simtime::{ContentionCounter, LockClass, LockSnapshot, WallStopwatch};
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::marker::PhantomData;

/// Which lock design guards a parent–child structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPolicy {
    /// Vanilla VFIO: one global mutex serializes every operation.
    Coarse,
    /// FastIOV: devset rwlock + per-device mutex; inter-child operations
    /// run in parallel.
    Hierarchical,
}

/// The per-child mutex protecting a child's local state `T`.
///
/// Constructed once per child and passed to
/// [`ParentChildLock::lock_child`]; the returned guard dereferences to the
/// child state.
#[derive(Debug)]
pub struct ChildLock<T> {
    // analyze: allow(raw-lock): framework internal; acquisitions report as DevsetChild
    mutex: Mutex<T>,
    dep_id: u64,
}

impl<T> ChildLock<T> {
    /// Wraps `state` in a child lock.
    pub fn new(state: T) -> Self {
        ChildLock {
            // analyze: allow(raw-lock): framework internal; acquisitions report as DevsetChild
            mutex: Mutex::new(state),
            dep_id: lockdep::new_lock_id(),
        }
    }

    /// Direct access to the child state *bypassing the framework*.
    ///
    /// Only sound while the caller holds the corresponding
    /// [`ParentChildLock`] in parent mode, which excludes all child
    /// operations; the devset reset path uses this to sum member open
    /// counts. The [`ParentWitness`] argument enforces that at compile
    /// time: it can only be derived from a live [`ParentGuard`] (via
    /// [`ParentGuard::witness`]) and cannot outlive it.
    #[track_caller]
    pub fn lock_direct<'a>(&'a self, _proof: ParentWitness<'a>) -> DirectChildGuard<'a, T> {
        let dep = lockdep::acquire(LockClass::DevsetChild, self.dep_id, Mode::Exclusive);
        DirectChildGuard {
            _dep: dep,
            inner: self.mutex.lock(),
        }
    }
}

/// Proof that a parent-mode guard is live. A zero-sized token borrowed
/// from a [`ParentGuard`]; holding one guarantees every child operation
/// is excluded for its lifetime.
#[derive(Clone, Copy)]
pub struct ParentWitness<'a> {
    _guard: PhantomData<&'a ()>,
}

/// Guard of [`ChildLock::lock_direct`]; dereferences to the child state.
pub struct DirectChildGuard<'a, T> {
    _dep: Option<HeldToken>,
    inner: MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for DirectChildGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for DirectChildGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// The parent-side lock pair implementing the framework.
///
/// `P` is the parent's global state, protected by parent-mode acquisition.
///
/// # Examples
///
/// ```
/// use fastiov_vfio::{ChildLock, LockPolicy, ParentChildLock};
///
/// // A devset with two devices.
/// let lock = ParentChildLock::new(LockPolicy::Hierarchical, 0u64);
/// let dev_a = ChildLock::new(0u32);
/// let dev_b = ChildLock::new(0u32);
///
/// // Inter-child operations may run in parallel...
/// *lock.lock_child(&dev_a) += 1;
/// *lock.lock_child(&dev_b) += 1;
/// // ...while parent operations exclude everything.
/// *lock.lock_parent() += 1;
/// assert_eq!(*lock.lock_parent(), 1);
/// ```
#[derive(Debug)]
pub struct ParentChildLock<P> {
    policy: LockPolicy,
    /// Used only under [`LockPolicy::Coarse`].
    // analyze: allow(raw-lock): framework internal; acquisitions report as DevsetParent
    coarse: Mutex<()>,
    /// Used only under [`LockPolicy::Hierarchical`].
    // analyze: allow(raw-lock): framework internal; acquisitions report as DevsetParent
    rw: RwLock<()>,
    /// The parent's global state. Access is legal only through guards, so
    /// it sits in its own mutex; under either policy that mutex is
    /// uncontended by construction (parent access is already exclusive).
    // analyze: allow(raw-lock): framework internal; acquisitions report as DevsetState
    parent_state: Mutex<P>,
    /// Wait/hold accounting across all operations on this lock pair.
    stats: ContentionCounter,
    /// Lockdep instance id shared by the coarse mutex and the rwlock
    /// (they play the same role, never both).
    dep_id: u64,
    /// Lockdep instance id of the parent-state mutex.
    state_dep_id: u64,
}

/// Guard for a child operation; dereferences to the child state.
///
/// Field order is load-bearing: lockdep tokens drop (popping the
/// per-thread held stack) before the locks they describe are released.
pub struct ChildGuard<'a, T> {
    _child_dep: Option<HeldToken>,
    _outer_dep: Option<HeldToken>,
    _outer: OuterGuard<'a>,
    child: MutexGuard<'a, T>,
    stats: &'a ContentionCounter,
    wait_ns: u64,
    acquired: WallStopwatch,
}

/// Guard for a parent operation; dereferences to the parent state.
pub struct ParentGuard<'a, P> {
    _state_dep: Option<HeldToken>,
    _outer_dep: Option<HeldToken>,
    _outer: OuterParentGuard<'a>,
    parent: MutexGuard<'a, P>,
    stats: &'a ContentionCounter,
    wait_ns: u64,
    acquired: WallStopwatch,
}

impl<P> ParentGuard<'_, P> {
    /// A proof token for [`ChildLock::lock_direct`], borrowed from this
    /// guard so it cannot outlive the parent-mode exclusion.
    pub fn witness(&self) -> ParentWitness<'_> {
        ParentWitness {
            _guard: PhantomData,
        }
    }
}

impl<T> Drop for ChildGuard<'_, T> {
    fn drop(&mut self) {
        self.stats.record(self.wait_ns, self.acquired.elapsed_ns());
    }
}

impl<P> Drop for ParentGuard<'_, P> {
    fn drop(&mut self) {
        self.stats.record(self.wait_ns, self.acquired.elapsed_ns());
    }
}

// The guards are held purely for their Drop impls (RAII release).
#[allow(dead_code)]
enum OuterGuard<'a> {
    Coarse(MutexGuard<'a, ()>),
    Read(RwLockReadGuard<'a, ()>),
}

#[allow(dead_code)]
enum OuterParentGuard<'a> {
    Coarse(MutexGuard<'a, ()>),
    Write(RwLockWriteGuard<'a, ()>),
}

impl<P> ParentChildLock<P> {
    /// Creates the lock pair with the given policy and parent state.
    pub fn new(policy: LockPolicy, parent_state: P) -> Self {
        ParentChildLock {
            policy,
            // analyze: allow(raw-lock): framework internal; acquisitions report as DevsetParent
            coarse: Mutex::new(()),
            // analyze: allow(raw-lock): framework internal; acquisitions report as DevsetParent
            rw: RwLock::new(()),
            // analyze: allow(raw-lock): framework internal; acquisitions report as DevsetState
            parent_state: Mutex::new(parent_state),
            stats: ContentionCounter::new(),
            dep_id: lockdep::new_lock_id(),
            state_dep_id: lockdep::new_lock_id(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> LockPolicy {
        self.policy
    }

    /// Accumulated wait/hold time across all operations on this lock.
    pub fn lock_stats(&self) -> LockSnapshot {
        self.stats.snapshot()
    }

    /// Acquires for an **intra/inter-child** operation on the child whose
    /// local state lives in `child`.
    ///
    /// Under [`LockPolicy::Hierarchical`], two calls with *different*
    /// children proceed in parallel; same-child calls and any parent
    /// operation are excluded. Under [`LockPolicy::Coarse`], everything is
    /// serialized.
    #[track_caller]
    pub fn lock_child<'a, T>(&'a self, child: &'a ChildLock<T>) -> ChildGuard<'a, T> {
        let t0 = WallStopwatch::start();
        // Coarse mode's single mutex plays the parent-lock role but in
        // exclusive mode; hierarchical child ops share the read side.
        let outer_mode = match self.policy {
            LockPolicy::Coarse => Mode::Exclusive,
            LockPolicy::Hierarchical => Mode::Shared,
        };
        let outer_dep = lockdep::acquire(LockClass::DevsetParent, self.dep_id, outer_mode);
        let outer = match self.policy {
            LockPolicy::Coarse => OuterGuard::Coarse(self.coarse.lock()),
            LockPolicy::Hierarchical => OuterGuard::Read(self.rw.read()),
        };
        let child_dep = lockdep::acquire(LockClass::DevsetChild, child.dep_id, Mode::Exclusive);
        let child = child.mutex.lock();
        ChildGuard {
            _child_dep: child_dep,
            _outer_dep: outer_dep,
            _outer: outer,
            child,
            stats: &self.stats,
            wait_ns: t0.elapsed_ns(),
            acquired: WallStopwatch::start(),
        }
    }

    /// Acquires for an **intra-parent** or **parent–child** operation.
    /// Excludes every other operation under either policy.
    #[track_caller]
    pub fn lock_parent(&self) -> ParentGuard<'_, P> {
        let t0 = WallStopwatch::start();
        let outer_dep = lockdep::acquire(LockClass::DevsetParent, self.dep_id, Mode::Exclusive);
        let outer = match self.policy {
            LockPolicy::Coarse => OuterParentGuard::Coarse(self.coarse.lock()),
            LockPolicy::Hierarchical => OuterParentGuard::Write(self.rw.write()),
        };
        let state_dep =
            lockdep::acquire(LockClass::DevsetState, self.state_dep_id, Mode::Exclusive);
        let parent = self.parent_state.lock();
        ParentGuard {
            _state_dep: state_dep,
            _outer_dep: outer_dep,
            _outer: outer,
            parent,
            stats: &self.stats,
            wait_ns: t0.elapsed_ns(),
            acquired: WallStopwatch::start(),
        }
    }
}

impl<T> std::ops::Deref for ChildGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.child
    }
}

impl<T> std::ops::DerefMut for ChildGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.child
    }
}

impl<P> std::ops::Deref for ParentGuard<'_, P> {
    type Target = P;

    fn deref(&self) -> &P {
        &self.parent
    }
}

impl<P> std::ops::DerefMut for ParentGuard<'_, P> {
    fn deref_mut(&mut self) -> &mut P {
        &mut self.parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastiov_simtime::WallStopwatch;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// Measures wall time of `n` concurrent child ops each holding the
    /// lock for `hold`.
    fn run_children(policy: LockPolicy, n: usize, hold: Duration) -> Duration {
        let lock = Arc::new(ParentChildLock::new(policy, 0u32));
        let children: Arc<Vec<ChildLock<u32>>> =
            Arc::new((0..n).map(|_| ChildLock::new(0)).collect());
        let t0 = WallStopwatch::start();
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let children = Arc::clone(&children);
                std::thread::spawn(move || {
                    let mut g = lock.lock_child(&children[i]);
                    std::thread::sleep(hold);
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        t0.elapsed()
    }

    #[test]
    fn coarse_serializes_hierarchical_parallelizes() {
        let hold = Duration::from_millis(5);
        let n = 8;
        let coarse = run_children(LockPolicy::Coarse, n, hold);
        let hier = run_children(LockPolicy::Hierarchical, n, hold);
        // Coarse must take ~n*hold, hierarchical ~hold. Use a conservative
        // 2x separation to stay robust under scheduler noise.
        assert!(
            coarse > hier * 2,
            "coarse {coarse:?} should be much slower than hierarchical {hier:?}"
        );
        assert!(coarse >= hold * (n as u32 - 1));
    }

    #[test]
    fn parent_op_excludes_child_ops() {
        for policy in [LockPolicy::Coarse, LockPolicy::Hierarchical] {
            let lock = Arc::new(ParentChildLock::new(policy, 0u32));
            let child = Arc::new(ChildLock::new(0u32));
            let in_parent = Arc::new(AtomicUsize::new(0));

            let l2 = Arc::clone(&lock);
            let flag = Arc::clone(&in_parent);
            let parent_thread = std::thread::spawn(move || {
                let mut g = l2.lock_parent();
                flag.store(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(20));
                *g += 1;
                flag.store(0, Ordering::SeqCst);
            });
            // Give the parent thread time to take the lock.
            std::thread::sleep(Duration::from_millis(5));
            let flag = Arc::clone(&in_parent);
            let l3 = Arc::clone(&lock);
            let c2 = Arc::clone(&child);
            let child_thread = std::thread::spawn(move || {
                let _g = l3.lock_child(&c2);
                // If exclusion works, the parent has finished by now.
                assert_eq!(flag.load(Ordering::SeqCst), 0, "policy {policy:?}");
            });
            parent_thread.join().unwrap();
            child_thread.join().unwrap();
        }
    }

    #[test]
    fn same_child_ops_are_exclusive_under_hierarchical() {
        let lock = Arc::new(ParentChildLock::new(LockPolicy::Hierarchical, ()));
        let child = Arc::new(ChildLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let child = Arc::clone(&child);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let mut g = lock.lock_child(&child);
                        // Non-atomic increment: only correct if exclusive.
                        let v = *g;
                        *g = v + 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock_child(&child), 8000);
    }

    #[test]
    fn parent_state_is_reachable_through_guard() {
        let lock = ParentChildLock::new(LockPolicy::Hierarchical, vec![1, 2, 3]);
        {
            let mut g = lock.lock_parent();
            g.push(4);
        }
        assert_eq!(lock.lock_parent().len(), 4);
    }

    #[test]
    fn lock_direct_requires_parent_witness() {
        let lock = ParentChildLock::new(LockPolicy::Hierarchical, ());
        let child = ChildLock::new(7u32);
        let parent = lock.lock_parent();
        assert_eq!(*child.lock_direct(parent.witness()), 7);
        // The witness borrow keeps `parent` alive; dropping the guard
        // while a witness-derived guard is held does not compile.
    }
}
