//! The VFIO container: DMA memory mapping (Fig. 6).
//!
//! `dma_map` runs the four-step pipeline the paper profiles:
//!
//! 1. **Page retrieving** — every page of the span is allocated up front
//!    (the IOMMU cannot fault), batched by physical contiguity;
//! 2. **Page zeroing** — eager (vanilla: >93 % of mapping time) or
//!    deferred (FastIOV decoupled zeroing: the unzeroed frames are handed
//!    to a registrar, `fastiovd` in the full stack);
//! 3. **Page pinning** — refcounts keep the HPAs stable;
//! 4. **Page mapping** — IOVA→HPA entries installed in the I/O page table.

use crate::{Result, VfioError};
use fastiov_faults::{sites, FaultPlane};
use fastiov_hostmem::{AddressSpace, FrameRange, Hva, Iova, Populate};
use fastiov_iommu::IommuDomain;
use fastiov_simtime::Clock;
use fastiov_simtime::{LockClass, TrackedMutex};
use std::sync::Arc;

/// Zeroing discipline for a DMA mapping.
pub enum DmaZeroMode<'a> {
    /// Zero every newly allocated page during the mapping (vanilla VFIO).
    Eager,
    /// Leave newly allocated pages dirty and pass them to the registrar
    /// (FastIOV decoupled zeroing; the registrar is `fastiovd`, which will
    /// zero each page inside the EPT fault on first guest access).
    ///
    /// The registrar returns `false` when it refuses the frames (scrub
    /// registration failure); the container then degrades gracefully by
    /// zeroing those frames eagerly, so the unzeroed-page invariant never
    /// depends on the scrubber being healthy.
    Deferred(&'a dyn Fn(u64, &[FrameRange]) -> bool),
}

/// One live DMA mapping.
#[derive(Debug, Clone)]
pub struct DmaMapping {
    /// Device-visible base address.
    pub iova: Iova,
    /// Host-virtual base of the mapped span.
    pub hva: Hva,
    /// Length in bytes.
    pub len: u64,
    /// All frames backing the span, in page order.
    pub ranges: Vec<FrameRange>,
    /// The subset that was freshly allocated by this mapping.
    pub newly_allocated: Vec<FrameRange>,
}

/// A VFIO container: one guest's DMA state (IOMMU domain + mappings).
pub struct VfioContainer {
    domain: Arc<IommuDomain>,
    aspace: Arc<AddressSpace>,
    mappings: TrackedMutex<Vec<DmaMapping>>,
    /// Fault plane consulted on the pin and map steps, with the clock
    /// latency spikes are charged to.
    faults: Option<(Arc<FaultPlane>, Clock)>,
}

impl VfioContainer {
    /// Creates a container for the hypervisor process `aspace` translating
    /// through `domain`.
    pub fn new(domain: Arc<IommuDomain>, aspace: Arc<AddressSpace>) -> Arc<Self> {
        Arc::new(VfioContainer {
            domain,
            aspace,
            mappings: TrackedMutex::new(LockClass::VfioContainer, Vec::new()),
            faults: None,
        })
    }

    /// Creates a container with a fault plane on the pin/map pipeline.
    pub fn with_faults(
        domain: Arc<IommuDomain>,
        aspace: Arc<AddressSpace>,
        plane: Arc<FaultPlane>,
        clock: Clock,
    ) -> Arc<Self> {
        Arc::new(VfioContainer {
            domain,
            aspace,
            mappings: TrackedMutex::new(LockClass::VfioContainer, Vec::new()),
            faults: plane.is_enabled().then_some((plane, clock)),
        })
    }

    fn check_fault(&self, site: &'static str) -> Result<()> {
        if let Some((plane, clock)) = &self.faults {
            plane.check(site, self.aspace.pid(), clock)?;
        }
        Ok(())
    }

    /// The container's IOMMU domain.
    pub fn domain(&self) -> &Arc<IommuDomain> {
        &self.domain
    }

    /// The hypervisor address space this container maps from.
    pub fn address_space(&self) -> &Arc<AddressSpace> {
        &self.aspace
    }

    /// Maps `[hva, hva+len)` of the hypervisor address space to
    /// `[iova, iova+len)` for device DMA.
    ///
    /// Pages already populated (e.g. written by the hypervisor before the
    /// mapping) are pinned and mapped as-is; missing pages are allocated
    /// according to `mode`.
    pub fn dma_map(&self, hva: Hva, len: u64, iova: Iova, mode: DmaZeroMode<'_>) -> Result<()> {
        // Step 1: retrieve — allocate every missing page of the span.
        let newly = self.aspace.populate_range(
            hva,
            len,
            match mode {
                DmaZeroMode::Eager => Populate::AllocZero, // step 2 folded in
                DmaZeroMode::Deferred(_) => Populate::AllocOnly,
            },
        )?;
        // Step 2 (deferred flavour): hand dirty frames to the registrar.
        // A refused registration falls back to eager zeroing — the pages
        // must never reach the guest dirty, scrubber or not.
        if let DmaZeroMode::Deferred(register) = mode {
            if !register(self.aspace.pid(), &newly) {
                self.aspace.memory().zero_ranges(&newly)?;
            }
        }
        // Step 3: pin the whole span.
        let all = self.aspace.frames_in(hva, len)?;
        let mem = self.aspace.memory();
        self.check_fault(sites::DMA_PIN)?;
        mem.pin_ranges(&all)?;
        // Step 4: install IOVA→HPA translations.
        if let Err(f) = self.check_fault(sites::IOMMU_MAP) {
            let _ = mem.unpin_ranges(&all);
            return Err(f);
        }
        if let Err(e) = self.domain.map_range(iova, &all, mem) {
            // Roll back the pin so the container stays consistent.
            let _ = mem.unpin_ranges(&all);
            return Err(VfioError::Iommu(e));
        }
        self.mappings.lock().push(DmaMapping {
            iova,
            hva,
            len,
            ranges: all,
            newly_allocated: newly,
        });
        Ok(())
    }

    /// Unmaps the mapping that starts at `iova`, unpinning its frames.
    pub fn dma_unmap(&self, iova: Iova) -> Result<DmaMapping> {
        let mapping = {
            let mut maps = self.mappings.lock();
            let idx = maps
                .iter()
                .position(|m| m.iova == iova)
                .ok_or(VfioError::Iommu(fastiov_iommu::IommuError::NotMapped(iova)))?;
            maps.remove(idx)
        };
        let pages: usize = mapping.ranges.iter().map(|r| r.count).sum();
        self.domain.unmap_range(mapping.iova, pages)?;
        self.aspace.memory().unpin_ranges(&mapping.ranges)?;
        Ok(mapping)
    }

    /// Unmaps everything (guest teardown).
    pub fn dma_unmap_all(&self) -> Result<Vec<DmaMapping>> {
        let iovas: Vec<Iova> = self.mappings.lock().iter().map(|m| m.iova).collect();
        let mut out = Vec::with_capacity(iovas.len());
        for iova in iovas {
            out.push(self.dma_unmap(iova)?);
        }
        Ok(out)
    }

    /// Snapshot of live mappings.
    pub fn mappings(&self) -> Vec<DmaMapping> {
        self.mappings.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastiov_hostmem::{MemCosts, PageSize, PhysMemory};
    use fastiov_simtime::Clock;
    use parking_lot::Mutex as PlMutex;
    use std::time::Duration;

    const PAGE: u64 = 2 * 1024 * 1024;

    fn setup() -> (Arc<PhysMemory>, Arc<AddressSpace>, Arc<VfioContainer>) {
        let mem = PhysMemory::new(MemCosts::for_tests(), PageSize::Size2M, 256);
        let aspace = AddressSpace::new(7, Arc::clone(&mem));
        let iommu = fastiov_iommu::Iommu::new(
            Clock::with_scale(1e-5),
            Duration::from_nanos(100),
            Duration::from_nanos(300),
            64,
        );
        let domain = iommu.create_domain(PageSize::Size2M);
        let container = VfioContainer::new(domain, Arc::clone(&aspace));
        (mem, aspace, container)
    }

    #[test]
    fn eager_map_zeroes_pins_and_maps() {
        let (mem, aspace, c) = setup();
        let hva = aspace.mmap("ram", 8 * PAGE).unwrap();
        c.dma_map(hva, 8 * PAGE, Iova(0), DmaZeroMode::Eager)
            .unwrap();
        let m = &c.mappings()[0];
        assert_eq!(m.ranges.iter().map(|r| r.count).sum::<usize>(), 8);
        for r in &m.ranges {
            for f in r.iter() {
                assert!(!mem.leaks_residue(f).unwrap());
                assert_eq!(mem.pin_count(f).unwrap(), 1);
            }
        }
        assert_eq!(c.domain().stats().mapped_pages, 8);
        assert_eq!(mem.stats().frames_zeroed_charged, 8);
    }

    #[test]
    fn deferred_map_registers_dirty_frames() {
        let (mem, aspace, c) = setup();
        let hva = aspace.mmap("ram", 4 * PAGE).unwrap();
        let registered: PlMutex<Vec<(u64, usize)>> = PlMutex::new(Vec::new());
        let reg = |pid: u64, ranges: &[FrameRange]| {
            registered
                .lock()
                .push((pid, ranges.iter().map(|r| r.count).sum()));
            true
        };
        c.dma_map(hva, 4 * PAGE, Iova(0), DmaZeroMode::Deferred(&reg))
            .unwrap();
        assert_eq!(registered.lock().as_slice(), &[(7, 4)]);
        // Frames are mapped and pinned but still dirty.
        let m = &c.mappings()[0];
        for r in &m.ranges {
            for f in r.iter() {
                assert!(mem.leaks_residue(f).unwrap());
                assert_eq!(mem.pin_count(f).unwrap(), 1);
            }
        }
        assert_eq!(mem.stats().frames_zeroed_charged, 0);
    }

    #[test]
    fn prepopulated_pages_are_not_reregistered() {
        // Hypervisor wrote 2 pages (BIOS/kernel) before the mapping: those
        // were host-faulted (zeroed) and must not reach the registrar.
        let (_, aspace, c) = setup();
        let hva = aspace.mmap("ram", 4 * PAGE).unwrap();
        aspace.write(hva, &[1u8; 64]).unwrap();
        aspace.write(hva + PAGE, &[2u8; 64]).unwrap();
        let count = PlMutex::new(0usize);
        let reg = |_pid: u64, ranges: &[FrameRange]| {
            *count.lock() += ranges.iter().map(|r| r.count).sum::<usize>();
            true
        };
        c.dma_map(hva, 4 * PAGE, Iova(0), DmaZeroMode::Deferred(&reg))
            .unwrap();
        assert_eq!(*count.lock(), 2, "only the two missing pages registered");
        // All four pages pinned and mapped.
        assert_eq!(c.domain().stats().mapped_pages, 4);
    }

    #[test]
    fn refused_registration_falls_back_to_eager_zero() {
        // Scrub registration failure must not leave dirty pages mapped:
        // the container zeroes them eagerly instead.
        let (mem, aspace, c) = setup();
        let hva = aspace.mmap("ram", 4 * PAGE).unwrap();
        let reg = |_pid: u64, _ranges: &[FrameRange]| false;
        c.dma_map(hva, 4 * PAGE, Iova(0), DmaZeroMode::Deferred(&reg))
            .unwrap();
        let m = &c.mappings()[0];
        for r in &m.ranges {
            for f in r.iter() {
                assert!(!mem.leaks_residue(f).unwrap());
            }
        }
        assert_eq!(mem.stats().frames_zeroed_charged, 4);
    }

    #[test]
    fn injected_pin_fault_fails_map_cleanly() {
        use fastiov_faults::{Effect, FaultPoint, Trigger};
        let mem = PhysMemory::new(MemCosts::for_tests(), PageSize::Size2M, 256);
        let aspace = AddressSpace::new(7, Arc::clone(&mem));
        let iommu = fastiov_iommu::Iommu::new(
            Clock::with_scale(1e-5),
            Duration::from_nanos(100),
            Duration::from_nanos(300),
            64,
        );
        let plane = FaultPlane::with_points(
            0,
            vec![FaultPoint {
                site: sites::DMA_PIN,
                trigger: Trigger::Once(1),
                effect: Effect::Error,
            }],
        );
        let c = VfioContainer::with_faults(
            iommu.create_domain(PageSize::Size2M),
            Arc::clone(&aspace),
            plane,
            Clock::with_scale(1e-5),
        );
        let hva = aspace.mmap("ram", 2 * PAGE).unwrap();
        let e = c
            .dma_map(hva, 2 * PAGE, Iova(0), DmaZeroMode::Eager)
            .unwrap_err();
        assert!(matches!(e, VfioError::Injected(_)));
        assert!(c.mappings().is_empty());
        // Second attempt (call count 2) succeeds; nothing stayed pinned.
        c.dma_map(hva, 2 * PAGE, Iova(0), DmaZeroMode::Eager)
            .unwrap();
        for r in &c.mappings()[0].ranges {
            for f in r.iter() {
                assert_eq!(mem.pin_count(f).unwrap(), 1);
            }
        }
    }

    #[test]
    fn translation_follows_page_order() {
        let (mem, aspace, c) = setup();
        let hva = aspace.mmap("ram", 4 * PAGE).unwrap();
        c.dma_map(hva, 4 * PAGE, Iova(0), DmaZeroMode::Eager)
            .unwrap();
        // Writing via HVA page 2 must be visible via IOVA page 2.
        aspace.write(hva + (2 * PAGE + 5), &[0xcd; 4]).unwrap();
        let hpa = c.domain().translate(Iova(2 * PAGE + 5)).unwrap();
        let mut buf = [0u8; 4];
        mem.read_phys(hpa, &mut buf).unwrap();
        assert_eq!(buf, [0xcd; 4]);
    }

    #[test]
    fn unmap_unpins_and_removes_translations() {
        let (mem, aspace, c) = setup();
        let hva = aspace.mmap("ram", 2 * PAGE).unwrap();
        c.dma_map(hva, 2 * PAGE, Iova(0), DmaZeroMode::Eager)
            .unwrap();
        let m = c.dma_unmap(Iova(0)).unwrap();
        for r in &m.ranges {
            for f in r.iter() {
                assert_eq!(mem.pin_count(f).unwrap(), 0);
            }
        }
        assert!(c.domain().translate(Iova(0)).is_err());
        assert!(c.mappings().is_empty());
        assert!(c.dma_unmap(Iova(0)).is_err());
    }

    #[test]
    fn unmap_all_clears_every_mapping() {
        let (_, aspace, c) = setup();
        let a = aspace.mmap("ram", 2 * PAGE).unwrap();
        let b = aspace.mmap("image", 2 * PAGE).unwrap();
        c.dma_map(a, 2 * PAGE, Iova(0), DmaZeroMode::Eager).unwrap();
        c.dma_map(b, 2 * PAGE, Iova(0x4000_0000), DmaZeroMode::Eager)
            .unwrap();
        let un = c.dma_unmap_all().unwrap();
        assert_eq!(un.len(), 2);
        assert!(c.mappings().is_empty());
    }
}
