//! KVM model: memory slots, the EPT, and the fault path FastIOV hooks.
//!
//! Guest physical memory accesses translate GPA→HPA through the EPT
//! (§2.2). EPT entries are built lazily: the first access to a guest page
//! takes an **EPT violation** into KVM, which resolves GPA→HVA through
//! the memslots, HVA→HPA through the host MMU (faulting the host page in
//! if necessary), and installs the entry (§4.3.2, Fig. 9, steps ③–⑥).
//!
//! FastIOV's decoupled zeroing lives exactly on this path: an
//! [`EptFaultHook`] is invoked with the resolved HPA *before* the entry
//! is installed, giving `fastiovd` the chance to zero a
//! deferred-registration page on the guest's first touch — and only then.
//! Subsequent accesses hit the installed entry and bypass the hook, which
//! is why the steady-state overhead is negligible (§6.5).

#![warn(missing_docs)]

use fastiov_hostmem::{AddressSpace, Gpa, Hpa, Hva, MemError, PageSize};
use fastiov_iommu::table::IoPageTable;
use fastiov_simtime::Clock;
use fastiov_simtime::{LockClass, TrackedMutex, TrackedRwLock};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors from the KVM model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvmError {
    /// GPA outside every memslot.
    NoMemslot(Gpa),
    /// Overlapping memslot registration.
    SlotOverlap(Gpa),
    /// Underlying host memory error.
    Mem(MemError),
}

impl fmt::Display for KvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvmError::NoMemslot(g) => write!(f, "no memslot covers {g}"),
            KvmError::SlotOverlap(g) => write!(f, "memslot at {g} overlaps an existing slot"),
            KvmError::Mem(e) => write!(f, "memory: {e}"),
        }
    }
}

impl std::error::Error for KvmError {}

impl From<MemError> for KvmError {
    fn from(e: MemError) -> Self {
        KvmError::Mem(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, KvmError>;

/// Observer of EPT faults, called with the resolved HPA page base before
/// the EPT entry is installed. Returns `true` if it zeroed the page.
pub trait EptFaultHook: Send + Sync {
    /// Invoked once per first-touch of a guest page.
    fn on_ept_fault(&self, pid: u64, hpa_page: Hpa) -> bool;
}

/// A GPA→HVA memory slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Memslot {
    /// Guest-physical base.
    pub gpa: Gpa,
    /// Length in bytes.
    pub len: u64,
    /// Host-virtual base in the hypervisor process.
    pub hva: Hva,
}

/// Counters exposed by [`Vm::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// EPT violations taken (first touches).
    pub ept_faults: u64,
    /// Faults in which the hook zeroed the page.
    pub hook_zeroed: u64,
    /// EPT entries currently installed.
    pub ept_entries: usize,
}

/// One guest's KVM state.
pub struct Vm {
    pid: u64,
    clock: Clock,
    aspace: Arc<AddressSpace>,
    page: PageSize,
    /// Charged per EPT violation (vm-exit + resolve + install).
    fault_latency: Duration,
    slots: TrackedRwLock<Vec<Memslot>>,
    ept: TrackedMutex<IoPageTable>,
    hook: TrackedRwLock<Option<Arc<dyn EptFaultHook>>>,
    faults: AtomicU64,
    hook_zeroed: AtomicU64,
}

impl Vm {
    /// Creates a VM for the hypervisor process behind `aspace`.
    pub fn new(clock: Clock, aspace: Arc<AddressSpace>, fault_latency: Duration) -> Arc<Self> {
        let page = aspace.memory().page_size();
        Arc::new(Vm {
            pid: aspace.pid(),
            clock,
            aspace,
            page,
            fault_latency,
            slots: TrackedRwLock::new(LockClass::KvmVm, Vec::new()),
            ept: TrackedMutex::new(LockClass::KvmVm, IoPageTable::new()),
            hook: TrackedRwLock::new(LockClass::KvmVm, None),
            faults: AtomicU64::new(0),
            hook_zeroed: AtomicU64::new(0),
        })
    }

    /// Hypervisor process id (the guest's identity for `fastiovd`).
    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// The hypervisor address space.
    pub fn address_space(&self) -> &Arc<AddressSpace> {
        &self.aspace
    }

    /// Installs the EPT fault hook (the `fastiovd` lazy-zeroing entry
    /// point).
    pub fn set_fault_hook(&self, hook: Arc<dyn EptFaultHook>) {
        *self.hook.write() = Some(hook);
    }

    /// Removes the fault hook.
    pub fn clear_fault_hook(&self) {
        *self.hook.write() = None;
    }

    /// Registers a GPA→HVA slot.
    pub fn set_memslot(&self, slot: Memslot) -> Result<()> {
        let mut slots = self.slots.write();
        for s in slots.iter() {
            let disjoint =
                slot.gpa.raw() + slot.len <= s.gpa.raw() || s.gpa.raw() + s.len <= slot.gpa.raw();
            if !disjoint {
                return Err(KvmError::SlotOverlap(slot.gpa));
            }
        }
        slots.push(slot);
        Ok(())
    }

    /// Translates a GPA to the hypervisor HVA via the memslots.
    pub fn gpa_to_hva(&self, gpa: Gpa) -> Result<Hva> {
        let slots = self.slots.read();
        for s in slots.iter() {
            if gpa.raw() >= s.gpa.raw() && gpa.raw() < s.gpa.raw() + s.len {
                return Ok(Hva(s.hva.raw() + (gpa.raw() - s.gpa.raw())));
            }
        }
        Err(KvmError::NoMemslot(gpa))
    }

    fn page_no(&self, gpa: Gpa) -> u64 {
        gpa.raw() / self.page.bytes()
    }

    /// Resolves the EPT entry for the page containing `gpa`, taking an EPT
    /// violation (Fig. 9 ③–⑥) on first touch. Returns the page-base HPA.
    pub fn ept_resolve(&self, gpa: Gpa) -> Result<Hpa> {
        let page = self.page_no(gpa);
        if let Some(hpa) = self.ept.lock().lookup(page) {
            return Ok(hpa);
        }
        // EPT violation: vm-exit into KVM.
        self.faults.fetch_add(1, Ordering::Relaxed);
        self.clock.sleep(self.fault_latency);
        let page_gpa = Gpa(page * self.page.bytes());
        let hva = self.gpa_to_hva(page_gpa)?;
        // Host-side fault if the page is not yet populated (the non-SR-IOV
        // path: allocate + zero on demand).
        let hpa = match self.aspace.translate(hva) {
            Ok(h) => h,
            Err(MemError::NotMapped(_)) => {
                self.aspace.touch(hva, 1)?;
                self.aspace.translate(hva)?
            }
            Err(e) => return Err(e.into()),
        };
        // FastIOV hook: lazy zeroing happens here, before the entry goes
        // live.
        if let Some(hook) = self.hook.read().clone() {
            if hook.on_ept_fault(self.pid, hpa) {
                self.hook_zeroed.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut ept = self.ept.lock();
        // A racing fault may have installed it; that is fine.
        let _ = ept.map(page, hpa);
        Ok(hpa)
    }

    /// Reads guest-physical memory through the EPT.
    pub fn read_gpa(&self, gpa: Gpa, buf: &mut [u8]) -> Result<()> {
        let page_bytes = self.page.bytes();
        let mut cursor = 0u64;
        while cursor < buf.len() as u64 {
            let a = Gpa(gpa.raw() + cursor);
            let base = self.ept_resolve(a)?;
            let off = a.page_offset(page_bytes);
            let chunk = (page_bytes - off).min(buf.len() as u64 - cursor);
            self.aspace.memory().read_phys(
                Hpa(base.raw() + off),
                &mut buf[cursor as usize..(cursor + chunk) as usize],
            )?;
            cursor += chunk;
        }
        Ok(())
    }

    /// Writes guest-physical memory through the EPT.
    pub fn write_gpa(&self, gpa: Gpa, data: &[u8]) -> Result<()> {
        let page_bytes = self.page.bytes();
        let mut cursor = 0u64;
        while cursor < data.len() as u64 {
            let a = Gpa(gpa.raw() + cursor);
            let base = self.ept_resolve(a)?;
            let off = a.page_offset(page_bytes);
            let chunk = (page_bytes - off).min(data.len() as u64 - cursor);
            self.aspace.memory().write_phys(
                Hpa(base.raw() + off),
                &data[cursor as usize..(cursor + chunk) as usize],
            )?;
            cursor += chunk;
        }
        Ok(())
    }

    /// Proactively touches every page of `[gpa, gpa+len)` so that EPT
    /// faults (and hence lazy zeroing) happen *now* — FastIOV's fix for
    /// para-virtualized shared buffers (§4.3.2): the guest frontend reads
    /// the first byte of each page before posting the buffer address to
    /// the vring.
    pub fn proactive_fault(&self, gpa: Gpa, len: u64) -> Result<()> {
        let page_bytes = self.page.bytes();
        let first = gpa.align_down(page_bytes);
        let mut p = first;
        while p.raw() < gpa.raw() + len.max(1) {
            self.ept_resolve(p)?;
            p = Gpa(p.raw() + page_bytes);
        }
        Ok(())
    }

    /// Drops every EPT entry covering `[gpa, gpa+len)` so the next guest
    /// access takes a fresh EPT violation — and therefore re-runs the
    /// fault hook. This is the recycle path's re-arming step: after the
    /// backing frames are re-registered with the lazy-zeroing daemon, the
    /// stale entries must go or the guest would bypass the hook and read
    /// whatever the previous tenant left. Returns the number of entries
    /// removed.
    pub fn clear_ept_range(&self, gpa: Gpa, len: u64) -> usize {
        let first = self.page_no(gpa);
        let last = self.page_no(Gpa(gpa.raw() + len.max(1) - 1));
        let mut ept = self.ept.lock();
        let mut removed = 0;
        for page in first..=last {
            if ept.unmap(page).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// True if the page containing `gpa` already has an EPT entry.
    pub fn ept_present(&self, gpa: Gpa) -> bool {
        self.ept.lock().lookup(self.page_no(gpa)).is_some()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> VmStats {
        VmStats {
            ept_faults: self.faults.load(Ordering::Relaxed),
            hook_zeroed: self.hook_zeroed.load(Ordering::Relaxed),
            ept_entries: self.ept.lock().entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastiov_hostmem::{MemCosts, PhysMemory, Populate};

    const PAGE: u64 = 2 * 1024 * 1024;

    fn setup() -> (Arc<PhysMemory>, Arc<AddressSpace>, Arc<Vm>) {
        let mem = PhysMemory::new(MemCosts::for_tests(), PageSize::Size2M, 128);
        let aspace = AddressSpace::new(11, Arc::clone(&mem));
        let vm = Vm::new(
            Clock::with_scale(1e-5),
            Arc::clone(&aspace),
            Duration::from_micros(20),
        );
        (mem, aspace, vm)
    }

    #[test]
    fn memslot_translation() {
        let (_, aspace, vm) = setup();
        let hva = aspace.mmap("ram", 4 * PAGE).unwrap();
        vm.set_memslot(Memslot {
            gpa: Gpa(0),
            len: 4 * PAGE,
            hva,
        })
        .unwrap();
        assert_eq!(
            vm.gpa_to_hva(Gpa(PAGE + 5)).unwrap(),
            Hva(hva.raw() + PAGE + 5)
        );
        assert!(matches!(
            vm.gpa_to_hva(Gpa(100 * PAGE)),
            Err(KvmError::NoMemslot(_))
        ));
    }

    #[test]
    fn overlapping_memslots_rejected() {
        let (_, aspace, vm) = setup();
        let hva = aspace.mmap("ram", 4 * PAGE).unwrap();
        vm.set_memslot(Memslot {
            gpa: Gpa(0),
            len: 2 * PAGE,
            hva,
        })
        .unwrap();
        assert!(matches!(
            vm.set_memslot(Memslot {
                gpa: Gpa(PAGE),
                len: 2 * PAGE,
                hva,
            }),
            Err(KvmError::SlotOverlap(_))
        ));
    }

    #[test]
    fn first_touch_faults_then_hits() {
        let (_, aspace, vm) = setup();
        let hva = aspace.mmap("ram", 2 * PAGE).unwrap();
        vm.set_memslot(Memslot {
            gpa: Gpa(0),
            len: 2 * PAGE,
            hva,
        })
        .unwrap();
        let mut buf = [0u8; 8];
        vm.read_gpa(Gpa(5), &mut buf).unwrap();
        assert_eq!(vm.stats().ept_faults, 1);
        vm.read_gpa(Gpa(100), &mut buf).unwrap();
        assert_eq!(vm.stats().ept_faults, 1, "second access hits the EPT");
        assert!(vm.ept_present(Gpa(0)));
        assert!(!vm.ept_present(Gpa(PAGE)));
    }

    #[test]
    fn unpopulated_page_is_host_faulted_and_zeroed() {
        // The non-SR-IOV path: nothing populated up front, guest touch
        // allocates and zeroes.
        let (mem, aspace, vm) = setup();
        let hva = aspace.mmap("ram", 2 * PAGE).unwrap();
        vm.set_memslot(Memslot {
            gpa: Gpa(0),
            len: 2 * PAGE,
            hva,
        })
        .unwrap();
        let mut buf = [0xffu8; 16];
        vm.read_gpa(Gpa(PAGE), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(mem.stats().free_frames, 127);
    }

    #[test]
    fn guest_write_read_round_trip_across_pages() {
        let (_, aspace, vm) = setup();
        let hva = aspace.mmap("ram", 4 * PAGE).unwrap();
        vm.set_memslot(Memslot {
            gpa: Gpa(0),
            len: 4 * PAGE,
            hva,
        })
        .unwrap();
        let data: Vec<u8> = (0..32).collect();
        vm.write_gpa(Gpa(PAGE - 16), &data).unwrap();
        let mut buf = vec![0u8; 32];
        vm.read_gpa(Gpa(PAGE - 16), &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(vm.stats().ept_faults, 2);
    }

    struct CountingHook(AtomicU64);

    impl EptFaultHook for CountingHook {
        fn on_ept_fault(&self, _pid: u64, _hpa: Hpa) -> bool {
            self.0.fetch_add(1, Ordering::Relaxed);
            true
        }
    }

    #[test]
    fn hook_fires_once_per_page() {
        let (_, aspace, vm) = setup();
        let hva = aspace.mmap("ram", 4 * PAGE).unwrap();
        // Pre-populate as the VFIO path would (no zeroing).
        aspace
            .populate_range(hva, 4 * PAGE, Populate::AllocOnly)
            .unwrap();
        vm.set_memslot(Memslot {
            gpa: Gpa(0),
            len: 4 * PAGE,
            hva,
        })
        .unwrap();
        let hook = Arc::new(CountingHook(AtomicU64::new(0)));
        vm.set_fault_hook(Arc::clone(&hook) as Arc<dyn EptFaultHook>);
        let mut buf = [0u8; 1];
        for _ in 0..3 {
            vm.read_gpa(Gpa(0), &mut buf).unwrap();
        }
        vm.read_gpa(Gpa(PAGE), &mut buf).unwrap();
        assert_eq!(hook.0.load(Ordering::Relaxed), 2);
        assert_eq!(vm.stats().hook_zeroed, 2);
    }

    #[test]
    fn clear_ept_range_rearms_faults_and_hook() {
        let (_, aspace, vm) = setup();
        let hva = aspace.mmap("ram", 4 * PAGE).unwrap();
        aspace
            .populate_range(hva, 4 * PAGE, Populate::AllocOnly)
            .unwrap();
        vm.set_memslot(Memslot {
            gpa: Gpa(0),
            len: 4 * PAGE,
            hva,
        })
        .unwrap();
        let hook = Arc::new(CountingHook(AtomicU64::new(0)));
        vm.set_fault_hook(Arc::clone(&hook) as Arc<dyn EptFaultHook>);
        vm.proactive_fault(Gpa(0), 4 * PAGE).unwrap();
        assert_eq!(hook.0.load(Ordering::Relaxed), 4);
        // Clear the middle two pages: their next touch faults (and runs
        // the hook) again; the outer two stay resident.
        assert_eq!(vm.clear_ept_range(Gpa(PAGE), 2 * PAGE), 2);
        assert!(vm.ept_present(Gpa(0)));
        assert!(!vm.ept_present(Gpa(PAGE)));
        let mut buf = [0u8; 1];
        vm.read_gpa(Gpa(0), &mut buf).unwrap();
        vm.read_gpa(Gpa(PAGE), &mut buf).unwrap();
        assert_eq!(hook.0.load(Ordering::Relaxed), 5);
        // Clearing an already-clear range removes nothing.
        assert_eq!(vm.clear_ept_range(Gpa(10 * PAGE), PAGE), 0);
    }

    #[test]
    fn proactive_fault_populates_ept() {
        let (_, aspace, vm) = setup();
        let hva = aspace.mmap("buf", 4 * PAGE).unwrap();
        vm.set_memslot(Memslot {
            gpa: Gpa(0),
            len: 4 * PAGE,
            hva,
        })
        .unwrap();
        vm.proactive_fault(Gpa(PAGE), 2 * PAGE).unwrap();
        assert!(vm.ept_present(Gpa(PAGE)));
        assert!(vm.ept_present(Gpa(2 * PAGE)));
        assert!(!vm.ept_present(Gpa(0)));
        assert_eq!(vm.stats().ept_entries, 2);
    }
}
