//! The vring: a descriptor ring in shared guest memory.
//!
//! Layout (all little-endian, at the ring's base GPA):
//!
//! ```text
//! offset 0:  avail_idx  u32   (written by guest)
//! offset 4:  used_idx   u32   (written by host)
//! offset 8:  desc[VRING_SLOTS], each 16 bytes:
//!            gpa u64 | len u32 | _reserved u32
//! ```
//!
//! The guest side writes through the EPT ([`fastiov_kvm::Vm::write_gpa`]),
//! so ring pages are EPT-faulted (and lazily zeroed) on the guest's first
//! write — matching the paper's observation that the ring itself is safe.
//! The host side reads and writes the same bytes through its own page
//! tables (the hypervisor [`AddressSpace`]), bypassing the EPT — exactly
//! the asymmetry that makes *buffer* pages hazardous.

use crate::{Result, VirtioError};
use fastiov_hostmem::{AddressSpace, Gpa, Hva};
use fastiov_kvm::Vm;
use std::sync::Arc;

/// Number of descriptor slots in a ring.
pub const VRING_SLOTS: u32 = 256;

const DESC_SIZE: u64 = 16;
const DESC_BASE: u64 = 8;

/// Total bytes a vring occupies in guest memory.
pub const VRING_BYTES: u64 = DESC_BASE + VRING_SLOTS as u64 * DESC_SIZE;

/// One descriptor: a guest buffer address and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Guest-physical address of the buffer.
    pub gpa: Gpa,
    /// Buffer length in bytes.
    pub len: u32,
}

/// A vring at a fixed GPA, with guest-side and host-side accessors.
pub struct Vring {
    vm: Arc<Vm>,
    aspace: Arc<AddressSpace>,
    base_gpa: Gpa,
    base_hva: Hva,
}

impl Vring {
    /// Wraps ring memory at `base_gpa`. The caller guarantees
    /// `VRING_BYTES` of guest memory there; `base_hva` is the host view of
    /// the same bytes.
    pub fn new(vm: Arc<Vm>, base_gpa: Gpa, base_hva: Hva) -> Self {
        let aspace = Arc::clone(vm.address_space());
        Vring {
            vm,
            aspace,
            base_gpa,
            base_hva,
        }
    }

    /// The ring's base GPA.
    pub fn base_gpa(&self) -> Gpa {
        self.base_gpa
    }

    fn guest_read_u32(&self, offset: u64) -> Result<u32> {
        let mut b = [0u8; 4];
        self.vm
            .read_gpa(Gpa(self.base_gpa.raw() + offset), &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn guest_write_u32(&self, offset: u64, v: u32) -> Result<()> {
        self.vm
            .write_gpa(Gpa(self.base_gpa.raw() + offset), &v.to_le_bytes())?;
        Ok(())
    }

    fn host_read_u32(&self, offset: u64) -> Result<u32> {
        let mut b = [0u8; 4];
        self.aspace
            .read(Hva(self.base_hva.raw() + offset), &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn host_write_u32(&self, offset: u64, v: u32) -> Result<()> {
        self.aspace
            .write(Hva(self.base_hva.raw() + offset), &v.to_le_bytes())?;
        Ok(())
    }

    /// Guest side: posts a buffer descriptor, advancing `avail_idx`.
    pub fn guest_push(&self, desc: Descriptor) -> Result<()> {
        let avail = self.guest_read_u32(0)?;
        let used = self.guest_read_u32(4)?;
        if avail.wrapping_sub(used) >= VRING_SLOTS {
            return Err(VirtioError::RingFull);
        }
        let slot = (avail % VRING_SLOTS) as u64;
        let off = DESC_BASE + slot * DESC_SIZE;
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&desc.gpa.raw().to_le_bytes());
        bytes[8..12].copy_from_slice(&desc.len.to_le_bytes());
        self.vm.write_gpa(Gpa(self.base_gpa.raw() + off), &bytes)?;
        self.guest_write_u32(0, avail.wrapping_add(1))?;
        Ok(())
    }

    /// Host side: pops the next available descriptor *without* marking it
    /// used (the backend fills the buffer first).
    pub fn host_peek(&self) -> Result<Descriptor> {
        let avail = self.host_read_u32(0)?;
        let used = self.host_read_u32(4)?;
        if avail == used {
            return Err(VirtioError::RingEmpty);
        }
        let slot = (used % VRING_SLOTS) as u64;
        let off = DESC_BASE + slot * DESC_SIZE;
        let mut bytes = [0u8; 16];
        self.aspace
            .read(Hva(self.base_hva.raw() + off), &mut bytes)?;
        let gpa = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        Ok(Descriptor { gpa: Gpa(gpa), len })
    }

    /// Host side: marks the current descriptor consumed, advancing
    /// `used_idx`.
    pub fn host_complete(&self) -> Result<()> {
        let used = self.host_read_u32(4)?;
        self.host_write_u32(4, used.wrapping_add(1))
    }

    /// Guest side: true if the host has completed more descriptors than
    /// the guest has consumed externally (simple progress check).
    pub fn guest_used_idx(&self) -> Result<u32> {
        self.guest_read_u32(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastiov_hostmem::{MemCosts, PageSize, PhysMemory};
    use fastiov_kvm::Memslot;
    use fastiov_simtime::Clock;
    use std::time::Duration;

    const PAGE: u64 = 2 * 1024 * 1024;

    fn setup() -> (Arc<Vm>, Vring) {
        let mem = PhysMemory::new(MemCosts::for_tests(), PageSize::Size2M, 64);
        let aspace = AddressSpace::new(5, mem);
        let vm = Vm::new(
            Clock::with_scale(1e-5),
            Arc::clone(&aspace),
            Duration::from_micros(10),
        );
        let hva = aspace.mmap("ram", 8 * PAGE).unwrap();
        vm.set_memslot(Memslot {
            gpa: Gpa(0),
            len: 8 * PAGE,
            hva,
        })
        .unwrap();
        let ring = Vring::new(Arc::clone(&vm), Gpa(0), hva);
        (vm, ring)
    }

    #[test]
    fn push_peek_complete_round_trip() {
        let (_, ring) = setup();
        assert!(matches!(ring.host_peek(), Err(VirtioError::RingEmpty)));
        ring.guest_push(Descriptor {
            gpa: Gpa(4 * PAGE),
            len: 1024,
        })
        .unwrap();
        let d = ring.host_peek().unwrap();
        assert_eq!(d.gpa, Gpa(4 * PAGE));
        assert_eq!(d.len, 1024);
        ring.host_complete().unwrap();
        assert_eq!(ring.guest_used_idx().unwrap(), 1);
        assert!(matches!(ring.host_peek(), Err(VirtioError::RingEmpty)));
    }

    #[test]
    fn ring_full_detected() {
        let (_, ring) = setup();
        for i in 0..VRING_SLOTS {
            ring.guest_push(Descriptor {
                gpa: Gpa(4 * PAGE + i as u64 * 64),
                len: 64,
            })
            .unwrap();
        }
        assert!(matches!(
            ring.guest_push(Descriptor {
                gpa: Gpa(4 * PAGE),
                len: 64
            }),
            Err(VirtioError::RingFull)
        ));
    }

    #[test]
    fn guest_writes_are_host_visible_and_vice_versa() {
        // The ring is genuinely shared memory: indices written on one side
        // are read on the other.
        let (_, ring) = setup();
        ring.guest_push(Descriptor {
            gpa: Gpa(PAGE),
            len: 10,
        })
        .unwrap();
        // Host observes avail=1 used=0.
        assert_eq!(ring.host_read_u32(0).unwrap(), 1);
        ring.host_complete().unwrap();
        // Guest observes used=1 through the EPT.
        assert_eq!(ring.guest_used_idx().unwrap(), 1);
    }

    #[test]
    fn slots_wrap_around() {
        let (_, ring) = setup();
        for round in 0..(VRING_SLOTS * 2 + 3) {
            ring.guest_push(Descriptor {
                gpa: Gpa(4 * PAGE),
                len: round,
            })
            .unwrap();
            let d = ring.host_peek().unwrap();
            assert_eq!(d.len, round);
            ring.host_complete().unwrap();
        }
    }
}
