//! Para-virtualized devices: the vring protocol, virtioFS, virtio-net.
//!
//! Para-virtualization exchanges data through buffers *shared* between the
//! guest and the host (§4.3.2): the guest posts buffer addresses into a
//! vring (itself shared memory); the host backend writes data into those
//! buffers **directly through its own page tables, bypassing the EPT**.
//!
//! That bypass is FastIOV's second lazy-zeroing hazard: if the guest has
//! never touched a shared buffer, its first *read* takes an EPT fault
//! — and naive lazy zeroing would wipe the data the host just wrote.
//! FastIOV's frontend therefore triggers **proactive EPT faults** (a read
//! of the first byte of each buffer page) *before* posting the buffer
//! address. Both behaviours are implemented here, switchable per device,
//! so the corruption is reproducible and the fix testable.

#![warn(missing_docs)]

pub mod fs;
pub mod net;
pub mod vring;

pub use fs::{VirtioFs, VirtioFsStats};
pub use net::VirtioNet;
pub use vring::{Descriptor, Vring, VRING_SLOTS};

use fastiov_hostmem::{Gpa, MemError};
use fastiov_kvm::KvmError;
use std::fmt;

/// Errors from the virtio models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VirtioError {
    /// The vring is full (guest posted too many descriptors).
    RingFull,
    /// Host popped an empty ring.
    RingEmpty,
    /// Unknown file in the shared directory.
    NoSuchFile(String),
    /// A descriptor pointed outside guest memory.
    BadDescriptor(Gpa),
    /// Underlying KVM error.
    Kvm(KvmError),
    /// Underlying memory error.
    Mem(MemError),
}

impl fmt::Display for VirtioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VirtioError::RingFull => write!(f, "vring full"),
            VirtioError::RingEmpty => write!(f, "vring empty"),
            VirtioError::NoSuchFile(n) => write!(f, "no such shared file: {n}"),
            VirtioError::BadDescriptor(g) => write!(f, "descriptor points outside memory: {g}"),
            VirtioError::Kvm(e) => write!(f, "kvm: {e}"),
            VirtioError::Mem(e) => write!(f, "memory: {e}"),
        }
    }
}

impl std::error::Error for VirtioError {}

impl From<KvmError> for VirtioError {
    fn from(e: KvmError) -> Self {
        VirtioError::Kvm(e)
    }
}

impl From<MemError> for VirtioError {
    fn from(e: MemError) -> Self {
        VirtioError::Mem(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, VirtioError>;
