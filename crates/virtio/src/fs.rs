//! virtioFS: the shared file system between host and microVM.
//!
//! File reads follow the paper's description (§4.3.2): the guest writes
//! the buffer address into the vring; the host backend fetches the
//! address, writes the file data into the shared buffer **through host
//! page tables**, and signals completion; the guest then reads the buffer
//! through the EPT. With FastIOV's decoupled zeroing, the guest frontend
//! must proactively EPT-fault the buffer pages *before* posting — the
//! `proactive_faults` flag selects between the correct FastIOV frontend
//! and the naive (corrupting) one, so tests can demonstrate both.

use crate::vring::{Descriptor, Vring};
use crate::{Result, VirtioError};
use fastiov_hostmem::{Gpa, Hva};
use fastiov_kvm::Vm;
use fastiov_simtime::FairShareBandwidth;
use fastiov_simtime::{LockClass, TrackedMutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters exposed by [`VirtioFs::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtioFsStats {
    /// File-read requests served.
    pub reads: u64,
    /// Bytes moved host→guest.
    pub bytes_read: u64,
}

/// The shared file system device of one microVM.
pub struct VirtioFs {
    vm: Arc<Vm>,
    ring: Vring,
    /// Host-side shared directory contents.
    files: TrackedMutex<HashMap<String, Arc<Vec<u8>>>>,
    /// Shared host↔guest copy bandwidth (the virtiofsd data path).
    bw: Arc<FairShareBandwidth>,
    /// FastIOV frontend behaviour: proactively EPT-fault buffer pages
    /// before posting them. Required for correctness under decoupled
    /// zeroing.
    proactive_faults: bool,
    reads: AtomicU64,
    bytes: AtomicU64,
}

impl VirtioFs {
    /// Creates the device with its ring at `ring_gpa`/`ring_hva`.
    pub fn new(
        vm: Arc<Vm>,
        ring_gpa: Gpa,
        ring_hva: Hva,
        bw: Arc<FairShareBandwidth>,
        proactive_faults: bool,
    ) -> Self {
        VirtioFs {
            ring: Vring::new(Arc::clone(&vm), ring_gpa, ring_hva),
            vm,
            files: TrackedMutex::new(LockClass::Virtio, HashMap::new()),
            bw,
            proactive_faults,
            reads: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Whether the frontend proactively faults buffers.
    pub fn proactive_faults(&self) -> bool {
        self.proactive_faults
    }

    /// Host side: exports a file into the shared directory.
    pub fn add_file(&self, name: &str, data: Vec<u8>) {
        self.files.lock().insert(name.to_string(), Arc::new(data));
    }

    /// Size of a shared file, if present.
    pub fn file_len(&self, name: &str) -> Option<usize> {
        self.files.lock().get(name).map(|d| d.len())
    }

    /// Guest side: reads (a prefix of) `name` into guest memory at
    /// `buf_gpa`, returning the bytes transferred. This drives the full
    /// shared-buffer protocol, including the lazy-zeroing hazard.
    pub fn guest_read_file(&self, name: &str, buf_gpa: Gpa, buf_len: u32) -> Result<usize> {
        let data = self
            .files
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| VirtioError::NoSuchFile(name.to_string()))?;
        let n = data.len().min(buf_len as usize);

        // FastIOV frontend: fault the buffer pages *now*, so any lazy
        // zeroing happens before the host writes data into them.
        if self.proactive_faults {
            self.vm.proactive_fault(buf_gpa, n as u64)?;
        }

        // Guest posts the buffer address to the vring (guest-side write:
        // ring pages EPT-fault here, harmlessly).
        self.ring.guest_push(Descriptor {
            gpa: buf_gpa,
            len: buf_len,
        })?;

        // Host backend: fetch the descriptor, write the file bytes into
        // the shared buffer through host page tables (EPT bypassed).
        let desc = self.ring.host_peek()?;
        let hva = self.vm.gpa_to_hva(desc.gpa)?;
        let aspace = self.vm.address_space();
        self.bw
            .transfer_with(n as u64, || aspace.write(hva, &data[..n]))?;
        self.ring.host_complete()?;

        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    /// Guest side: copies the buffer contents out through the EPT (what
    /// the application sees). Exposed separately so tests can observe
    /// corruption when `proactive_faults` is off.
    pub fn guest_read_buffer(&self, buf_gpa: Gpa, out: &mut [u8]) -> Result<()> {
        self.vm.read_gpa(buf_gpa, out)?;
        Ok(())
    }

    /// Convenience: full read + copy-out, returning the file bytes as the
    /// guest observes them.
    pub fn guest_read_to_vec(&self, name: &str, buf_gpa: Gpa, buf_len: u32) -> Result<Vec<u8>> {
        let n = self.guest_read_file(name, buf_gpa, buf_len)?;
        let mut out = vec![0u8; n];
        self.guest_read_buffer(buf_gpa, &mut out)?;
        Ok(out)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> VirtioFsStats {
        VirtioFsStats {
            reads: self.reads.load(Ordering::Relaxed),
            bytes_read: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vring::VRING_BYTES;
    use fastiov_hostmem::{AddressSpace, MemCosts, PageSize, PhysMemory, Populate};
    use fastiov_kvm::Memslot;
    use fastiov_simtime::Clock;
    use fastiovd_testhook::install_fastiovd;
    use std::time::Duration;

    const PAGE: u64 = 2 * 1024 * 1024;

    /// Minimal stand-in for the fastiovd hook so this crate's tests can
    /// exercise the corruption scenario without depending on the real
    /// `fastiovd` crate (which sits above us in the dependency graph).
    mod fastiovd_testhook {
        use super::*;
        use fastiov_hostmem::{FrameRange, Hpa, PhysMemory};
        use fastiov_kvm::EptFaultHook;
        use parking_lot::Mutex;
        use std::collections::HashSet;

        pub struct MiniLazyZero {
            mem: Arc<PhysMemory>,
            tracked: Mutex<HashSet<u64>>,
        }

        impl EptFaultHook for MiniLazyZero {
            fn on_ept_fault(&self, _pid: u64, hpa: Hpa) -> bool {
                if self.tracked.lock().remove(&hpa.raw()) {
                    let frame = self.mem.frame_of(hpa).expect("tracked frame");
                    return self.mem.zero_frame(frame).unwrap_or(false);
                }
                false
            }
        }

        /// Registers `ranges` for lazy zeroing and installs the hook.
        pub fn install_fastiovd(vm: &Arc<Vm>, mem: &Arc<PhysMemory>, ranges: &[FrameRange]) {
            let tracked = ranges
                .iter()
                .flat_map(|r| r.iter())
                .map(|f| mem.hpa_of(f).raw())
                .collect();
            vm.set_fault_hook(Arc::new(MiniLazyZero {
                mem: Arc::clone(mem),
                tracked: Mutex::new(tracked),
            }));
        }
    }

    struct Setup {
        mem: Arc<PhysMemory>,
        aspace: Arc<AddressSpace>,
        vm: Arc<Vm>,
        ram_hva: Hva,
    }

    fn setup() -> Setup {
        let clock = Clock::with_scale(1e-5);
        let mem = PhysMemory::new(MemCosts::for_tests(), PageSize::Size2M, 64);
        let aspace = AddressSpace::new(9, Arc::clone(&mem));
        let vm = Vm::new(clock, Arc::clone(&aspace), Duration::from_micros(10));
        let ram_hva = aspace.mmap("ram", 16 * PAGE).unwrap();
        vm.set_memslot(Memslot {
            gpa: Gpa(0),
            len: 16 * PAGE,
            hva: ram_hva,
        })
        .unwrap();
        Setup {
            mem,
            aspace,
            vm,
            ram_hva,
        }
    }

    // Compile-time layout check: the ring must fit in one page.
    const _: () = assert!(VRING_BYTES <= PAGE);

    fn make_fs(s: &Setup, proactive: bool) -> VirtioFs {
        let bw = FairShareBandwidth::new(Clock::with_scale(1e-5), 64e9, 8e9);
        VirtioFs::new(Arc::clone(&s.vm), Gpa(0), s.ram_hva, bw, proactive)
    }

    #[test]
    fn read_file_round_trips_with_eager_zeroing() {
        // Vanilla path: everything zeroed at map time, no hook installed.
        let s = setup();
        let fs = make_fs(&s, false);
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        fs.add_file("input.bin", payload.clone());
        let got = fs
            .guest_read_to_vec("input.bin", Gpa(4 * PAGE), 8192)
            .unwrap();
        assert_eq!(got, payload);
        assert_eq!(fs.stats().reads, 1);
        assert_eq!(fs.stats().bytes_read, 4096);
    }

    #[test]
    fn naive_lazy_zeroing_corrupts_shared_buffer_reads() {
        // Decoupled zeroing with a *naive* frontend: the EPT fault taken on
        // the guest's first read of the buffer zeroes the host-written
        // data. This is the §4.3.2 failure FastIOV must prevent.
        let s = setup();
        // VFIO-style eager allocation without zeroing, pages tracked.
        let ranges = s
            .aspace
            .populate_range(s.ram_hva, 16 * PAGE, Populate::AllocOnly)
            .unwrap();
        install_fastiovd(&s.vm, &s.mem, &ranges);
        let fs = make_fs(&s, /* proactive = */ false);
        let payload = vec![0xabu8; 1024];
        fs.add_file("data", payload);
        let got = fs.guest_read_to_vec("data", Gpa(4 * PAGE), 1024).unwrap();
        assert_eq!(got, vec![0u8; 1024], "data wiped by fault-time zeroing");
    }

    #[test]
    fn proactive_faults_preserve_shared_buffer_reads() {
        // Same setup, FastIOV frontend: buffer pages are faulted (and
        // zeroed) *before* the host writes, so the data survives.
        let s = setup();
        let ranges = s
            .aspace
            .populate_range(s.ram_hva, 16 * PAGE, Populate::AllocOnly)
            .unwrap();
        install_fastiovd(&s.vm, &s.mem, &ranges);
        let fs = make_fs(&s, /* proactive = */ true);
        let payload: Vec<u8> = (0..1024u32).map(|i| (i * 7 % 255) as u8 + 1).collect();
        fs.add_file("data", payload.clone());
        let got = fs.guest_read_to_vec("data", Gpa(4 * PAGE), 1024).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn missing_file_is_reported() {
        let s = setup();
        let fs = make_fs(&s, true);
        assert!(matches!(
            fs.guest_read_file("nope", Gpa(4 * PAGE), 64),
            Err(VirtioError::NoSuchFile(_))
        ));
    }

    #[test]
    fn read_truncates_to_buffer_len() {
        let s = setup();
        let fs = make_fs(&s, true);
        fs.add_file("big", vec![5u8; 10_000]);
        let got = fs.guest_read_to_vec("big", Gpa(4 * PAGE), 100).unwrap();
        assert_eq!(got.len(), 100);
        assert!(got.iter().all(|&b| b == 5));
    }
}
