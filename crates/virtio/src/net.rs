//! virtio-net: the emulated NIC used by software CNIs.
//!
//! Software CNIs (IPvtap, Flannel-style) give the microVM a
//! para-virtualized NIC instead of a passthrough VF (§6.4): no VFIO, no
//! DMA mapping, but every packet crosses the host kernel. The data path
//! here reuses the shared-buffer discipline of [`crate::fs`], including
//! the proactive-fault requirement under decoupled zeroing.

use crate::vring::{Descriptor, Vring};
use crate::Result;
use fastiov_hostmem::{Gpa, Hva};
use fastiov_kvm::Vm;
use fastiov_simtime::FairShareBandwidth;
use fastiov_simtime::{LockClass, TrackedCondvar, TrackedMutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The emulated NIC of one microVM.
pub struct VirtioNet {
    vm: Arc<Vm>,
    ring: Vring,
    /// Host-side emulation bandwidth (lower than SR-IOV line rate: the
    /// software data plane tax).
    bw: Arc<FairShareBandwidth>,
    proactive_faults: bool,
    /// Buffers the guest driver has prepared, in posting order, with
    /// completions signalled through a condvar.
    completions: TrackedMutex<VecDeque<(Gpa, usize)>>,
    cv: TrackedCondvar,
    rx_packets: AtomicU64,
}

impl VirtioNet {
    /// Creates the device with its ring at `ring_gpa`/`ring_hva`.
    pub fn new(
        vm: Arc<Vm>,
        ring_gpa: Gpa,
        ring_hva: Hva,
        bw: Arc<FairShareBandwidth>,
        proactive_faults: bool,
    ) -> Self {
        VirtioNet {
            ring: Vring::new(Arc::clone(&vm), ring_gpa, ring_hva),
            vm,
            bw,
            proactive_faults,
            completions: TrackedMutex::new(LockClass::Virtio, VecDeque::new()),
            cv: TrackedCondvar::new(),
            rx_packets: AtomicU64::new(0),
        }
    }

    /// Guest driver: posts an RX buffer.
    pub fn guest_post_rx(&self, buf_gpa: Gpa, len: u32) -> Result<()> {
        if self.proactive_faults {
            self.vm.proactive_fault(buf_gpa, len as u64)?;
        }
        self.ring.guest_push(Descriptor { gpa: buf_gpa, len })
    }

    /// Host side: delivers a packet into the next posted buffer and
    /// signals the guest. Returns the bytes written.
    pub fn host_deliver(&self, data: &[u8]) -> Result<usize> {
        let desc = self.ring.host_peek()?;
        let n = data.len().min(desc.len as usize);
        let hva = self.vm.gpa_to_hva(desc.gpa)?;
        let aspace = self.vm.address_space();
        self.bw
            .transfer_with(n as u64, || aspace.write(hva, &data[..n]))?;
        self.ring.host_complete()?;
        self.completions.lock().push_back((desc.gpa, n));
        self.cv.notify_all();
        self.rx_packets.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    /// Guest driver: waits for the next received packet and copies it out
    /// through the EPT.
    pub fn guest_recv(&self, out: &mut [u8]) -> Result<usize> {
        let (gpa, n) = {
            let mut c = self.completions.lock();
            loop {
                if let Some(x) = c.pop_front() {
                    break x;
                }
                self.cv.wait(&mut c);
            }
        };
        let n = n.min(out.len());
        self.vm.read_gpa(gpa, &mut out[..n])?;
        Ok(n)
    }

    /// Packets delivered so far.
    pub fn rx_packets(&self) -> u64 {
        self.rx_packets.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastiov_hostmem::{AddressSpace, MemCosts, PageSize, PhysMemory};
    use fastiov_kvm::Memslot;
    use fastiov_simtime::Clock;
    use std::time::Duration;

    const PAGE: u64 = 2 * 1024 * 1024;

    fn setup() -> (Arc<Vm>, VirtioNet) {
        let clock = Clock::with_scale(1e-5);
        let mem = PhysMemory::new(MemCosts::for_tests(), PageSize::Size2M, 64);
        let aspace = AddressSpace::new(3, mem);
        let vm = Vm::new(
            clock.clone(),
            Arc::clone(&aspace),
            Duration::from_micros(10),
        );
        let hva = aspace.mmap("ram", 8 * PAGE).unwrap();
        vm.set_memslot(Memslot {
            gpa: Gpa(0),
            len: 8 * PAGE,
            hva,
        })
        .unwrap();
        let bw = FairShareBandwidth::new(clock, 4e9, 1e9);
        let net = VirtioNet::new(Arc::clone(&vm), Gpa(0), hva, bw, true);
        (vm, net)
    }

    #[test]
    fn packet_round_trip() {
        let (_, net) = setup();
        net.guest_post_rx(Gpa(4 * PAGE), 1500).unwrap();
        let pkt: Vec<u8> = (0..100u8).collect();
        assert_eq!(net.host_deliver(&pkt).unwrap(), 100);
        let mut out = vec![0u8; 100];
        assert_eq!(net.guest_recv(&mut out).unwrap(), 100);
        assert_eq!(out, pkt);
        assert_eq!(net.rx_packets(), 1);
    }

    #[test]
    fn deliver_without_buffer_fails() {
        let (_, net) = setup();
        assert!(net.host_deliver(&[1, 2, 3]).is_err());
    }

    #[test]
    fn multiple_packets_in_order() {
        let (_, net) = setup();
        for i in 0..4u8 {
            net.guest_post_rx(Gpa(4 * PAGE + i as u64 * 4096), 4096)
                .unwrap();
        }
        for i in 0..4u8 {
            net.host_deliver(&[i; 8]).unwrap();
        }
        for i in 0..4u8 {
            let mut out = [0u8; 8];
            net.guest_recv(&mut out).unwrap();
            assert_eq!(out, [i; 8]);
        }
    }
}
